//! Core layers: linear, convolutions, batch norm, activations, pooling and
//! the [`Sequential`] container.

use crate::layer::{join_path, Ctx, Layer};
use crate::param::{Param, ParamVisitor, RefParamVisitor};
use mersit_tensor::{
    add_channel_bias, col2im, conv2d, conv2d_packed, dims4, dwconv2d, dwconv2d_backward,
    global_avg_pool, global_avg_pool_backward, im2col, maxpool2d, maxpool2d_backward, nchw_to_rows,
    rows_to_nchw, ConvSpec, PackedRhs, Rng, Tensor,
};

/// Fully connected layer `y = x·Wᵀ + b`, applied over the last dimension.
#[derive(Debug)]
pub struct Linear {
    /// Weight `[out, in]`.
    pub w: Param,
    /// Bias `[out]`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    cache_x: Option<Tensor>,
    cache_shape: Vec<usize>,
}

impl Linear {
    /// Kaiming-initialized linear layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Self {
            w: Param::new_gemm_rhs(Tensor::kaiming(&[out_dim, in_dim], in_dim, rng)),
            b: Param::new(Tensor::zeros(&[out_dim])),
            in_dim,
            out_dim,
            cache_x: None,
            cache_shape: Vec::new(),
        }
    }

    fn flatten_input(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape().last().copied(),
            Some(self.in_dim),
            "linear layer expects a trailing dimension of {}, got {:?}",
            self.in_dim,
            x.shape()
        );
        let rows = x.len() / self.in_dim;
        x.clone().reshape(&[rows, self.in_dim])
    }

    /// `x2·wᵀ + b` over pre-flattened `[rows, in]` input. With a packed
    /// panel form of `wᵀ` (from a plan's [`crate::layer::PlanWeight`])
    /// the transpose + per-call pack are skipped; results are
    /// bit-identical either way.
    fn apply(&self, x2: &Tensor, w: &Tensor, packed: Option<&PackedRhs>) -> Tensor {
        let mut y = match packed {
            Some(p) => x2.matmul_packed(p),
            None => x2.matmul(&w.transpose()),
        };
        self.add_bias_rows(&mut y);
        y
    }

    /// Broadcasts the bias over the rows of a `[rows, out]` product —
    /// shared by the float GEMM and bit-true paths so the bias addition
    /// is identical regardless of how the product was computed.
    fn add_bias_rows(&self, y: &mut Tensor) {
        let bd = self.b.value.data();
        for r in 0..y.shape()[0] {
            let row = &mut y.data_mut()[r * self.out_dim..(r + 1) * self.out_dim];
            for (v, &b) in row.iter_mut().zip(bd) {
                *v += b;
            }
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let shape = x.shape().to_vec();
        let x2 = self.flatten_input(&x);
        let y = self.apply(&x2, &self.w.value, None);
        self.cache_x = Some(x2);
        self.cache_shape = shape.clone();
        let mut out_shape = shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_dim;
        y.reshape(&out_shape)
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let ov = ctx.next_override();
        let w = ov.map_or(&self.w.value, |pw| &pw.value);
        debug_assert_eq!(w.shape(), self.w.value.shape(), "override shape mismatch");
        let shape = x.shape().to_vec();
        let x2 = self.flatten_input(&x);
        let y = if let Some(bt) = ov.and_then(|pw| pw.bit_true.as_deref()) {
            let mut y = bt.gemm(&x2);
            self.add_bias_rows(&mut y);
            y
        } else {
            self.apply(&x2, w, ov.and_then(|pw| pw.packed_t.as_ref()))
        };
        let mut out_shape = shape;
        *out_shape.last_mut().expect("rank >= 1") = self.out_dim;
        y.reshape(&out_shape)
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward before forward");
        let rows = x.shape()[0];
        let d2 = dout.reshape(&[rows, self.out_dim]);
        // dW += doutᵀ·x ; db += column sums ; dx = dout·W
        self.w.grad.axpy(1.0, &d2.transpose().matmul(&x));
        let mut db = vec![0.0f32; self.out_dim];
        for r in 0..rows {
            for (s, &g) in db
                .iter_mut()
                .zip(&d2.data()[r * self.out_dim..(r + 1) * self.out_dim])
            {
                *s += g;
            }
        }
        self.b
            .grad
            .axpy(1.0, &Tensor::from_vec(db, &[self.out_dim]));
        let dx = d2.matmul(&self.w.value);
        dx.reshape(&self.cache_shape)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        f(&join_path(prefix, "w"), &mut self.w);
        f(&join_path(prefix, "b"), &mut self.b);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        f(&join_path(prefix, "w"), &self.w);
        f(&join_path(prefix, "b"), &self.b);
    }

    fn kind(&self) -> &'static str {
        "linear"
    }
}

/// Standard 2-D convolution (weights pre-flattened for im2col).
#[derive(Debug)]
pub struct Conv2d {
    /// Weight `[OC, C·KH·KW]`.
    pub w: Param,
    /// Bias `[OC]`.
    pub b: Param,
    /// Geometry.
    pub spec: ConvSpec,
    in_ch: usize,
    out_ch: usize,
    cache: Option<(Tensor, Vec<usize>)>, // (col, x_shape)
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    #[must_use]
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = in_ch * k * k;
        Self {
            w: Param::new_gemm_rhs(Tensor::kaiming(&[out_ch, fan_in], fan_in, rng)),
            b: Param::new(Tensor::zeros(&[out_ch])),
            spec: ConvSpec::new(k, stride, pad),
            in_ch,
            out_ch,
            cache: None,
        }
    }

    /// Input channel count.
    #[must_use]
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// Output channel count.
    #[must_use]
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let col = im2col(&x, &self.spec);
        let (n, _, h, w) = dims4(&x);
        let (oh, ow) = self.spec.out_hw(h, w);
        let rows = col.matmul(&self.w.value.transpose());
        let mut out = rows_to_nchw(&rows, n, self.out_ch, oh, ow);
        add_channel_bias(&mut out, &self.b.value);
        self.cache = Some((col, x.shape().to_vec()));
        out
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let ov = ctx.next_override();
        let w = ov.map_or(&self.w.value, |pw| &pw.value);
        debug_assert_eq!(w.shape(), self.w.value.shape(), "override shape mismatch");
        if let Some(bt) = ov.and_then(|pw| pw.bit_true.as_deref()) {
            // Explicit im2col → engine GEMM → NCHW: same decomposition as
            // the float path, with the product computed on raw codes.
            let col = im2col(&x, &self.spec);
            let (n, _, h, w_in) = dims4(&x);
            let (oh, ow) = self.spec.out_hw(h, w_in);
            let rows = bt.gemm(&col);
            let mut out = rows_to_nchw(&rows, n, self.out_ch, oh, ow);
            add_channel_bias(&mut out, &self.b.value);
            return out;
        }
        if let Some(p) = ov.and_then(|pw| pw.packed_t.as_ref()) {
            return conv2d_packed(&x, p, Some(&self.b.value), &self.spec);
        }
        conv2d(&x, w, Some(&self.b.value), &self.spec)
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let (col, x_shape) = self.cache.take().expect("backward before forward");
        let rows = nchw_to_rows(&dout);
        self.w.grad.axpy(1.0, &rows.transpose().matmul(&col));
        // Bias gradient: column sums of `rows`.
        let mut db = vec![0.0f32; self.out_ch];
        for r in 0..rows.shape()[0] {
            for (s, &g) in db
                .iter_mut()
                .zip(&rows.data()[r * self.out_ch..(r + 1) * self.out_ch])
            {
                *s += g;
            }
        }
        self.b.grad.axpy(1.0, &Tensor::from_vec(db, &[self.out_ch]));
        let dcol = rows.matmul(&self.w.value);
        col2im(&dcol, &x_shape, &self.spec)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        f(&join_path(prefix, "w"), &mut self.w);
        f(&join_path(prefix, "b"), &mut self.b);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        f(&join_path(prefix, "w"), &self.w);
        f(&join_path(prefix, "b"), &self.b);
    }

    fn kind(&self) -> &'static str {
        "conv"
    }
}

/// Depthwise 2-D convolution (with per-channel bias, used by BN folding).
#[derive(Debug)]
pub struct DwConv2d {
    /// Weight `[C, KH, KW]`.
    pub w: Param,
    /// Per-channel bias `[C]` (zero until trained or folded into).
    pub b: Param,
    /// Geometry.
    pub spec: ConvSpec,
    cache_x: Option<Tensor>,
}

impl DwConv2d {
    /// Kaiming-initialized depthwise convolution.
    #[must_use]
    pub fn new(ch: usize, k: usize, stride: usize, pad: usize, rng: &mut Rng) -> Self {
        let fan_in = k * k;
        Self {
            w: Param::new(Tensor::kaiming(&[ch, k, k], fan_in, rng)),
            b: Param::new(Tensor::zeros(&[ch])),
            spec: ConvSpec::new(k, stride, pad),
            cache_x: None,
        }
    }
}

impl Layer for DwConv2d {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let mut y = dwconv2d(&x, &self.w.value, &self.spec);
        add_channel_bias(&mut y, &self.b.value);
        self.cache_x = Some(x);
        y
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let w = ctx.next_override().map_or(&self.w.value, |pw| &pw.value);
        debug_assert_eq!(w.shape(), self.w.value.shape(), "override shape mismatch");
        let mut y = dwconv2d(&x, w, &self.spec);
        add_channel_bias(&mut y, &self.b.value);
        y
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward before forward");
        let (dx, dw) = dwconv2d_backward(&x, &self.w.value, &dout, &self.spec);
        self.w.grad.axpy(1.0, &dw);
        // Bias gradient: per-channel sum of dout.
        let (n, c, h, w) = mersit_tensor::dims4(&dout);
        let mut db = vec![0.0f32; c];
        let dd = dout.data();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                db[ci] += dd[base..base + h * w].iter().sum::<f32>();
            }
        }
        self.b.grad.axpy(1.0, &Tensor::from_vec(db, &[c]));
        dx
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        f(&join_path(prefix, "w"), &mut self.w);
        f(&join_path(prefix, "b"), &mut self.b);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        f(&join_path(prefix, "w"), &self.w);
        f(&join_path(prefix, "b"), &self.b);
    }

    fn kind(&self) -> &'static str {
        "dwconv"
    }
}

/// 2-D batch normalization with running statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    /// Scale `[C]`.
    pub gamma: Param,
    /// Shift `[C]`.
    pub beta: Param,
    /// Running mean `[C]` (inference).
    pub running_mean: Tensor,
    /// Running variance `[C]` (inference).
    pub running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Batch norm over `ch` channels.
    #[must_use]
    pub fn new(ch: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full(&[ch], 1.0)),
            beta: Param::new(Tensor::zeros(&[ch])),
            running_mean: Tensor::zeros(&[ch]),
            running_var: Tensor::full(&[ch], 1.0),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Epsilon used in the variance denominator.
    #[must_use]
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let (n, c, h, w) = dims4(&x);
        let plane = n * h * w;
        let xd = x.data();
        let mut out = vec![0.0f32; x.len()];
        {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ci in 0..c {
                let mut s = 0.0;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    s += xd[base..base + h * w].iter().sum::<f32>();
                }
                mean[ci] = s / plane as f32;
                let mut v = 0.0;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    v += xd[base..base + h * w]
                        .iter()
                        .map(|&t| (t - mean[ci]) * (t - mean[ci]))
                        .sum::<f32>();
                }
                var[ci] = v / plane as f32;
            }
            // Update running stats.
            for ci in 0..c {
                let rm = self.running_mean.data_mut();
                rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean[ci];
                let rv = self.running_var.data_mut();
                rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * var[ci];
            }
            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut x_hat = vec![0.0f32; x.len()];
            let (gd, bd) = (self.gamma.value.data(), self.beta.value.data());
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for i in base..base + h * w {
                        let xh = (xd[i] - mean[ci]) * inv_std[ci];
                        x_hat[i] = xh;
                        out[i] = gd[ci] * xh + bd[ci];
                    }
                }
            }
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, x.shape()),
                inv_std,
            });
        }
        Tensor::from_vec(out, x.shape())
    }

    fn forward_ref(&self, x: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        let (n, c, h, w) = dims4(&x);
        let xd = x.data();
        let mut out = vec![0.0f32; x.len()];
        let (gd, bd) = (self.gamma.value.data(), self.beta.value.data());
        let (rm, rv) = (self.running_mean.data(), self.running_var.data());
        for ni in 0..n {
            for ci in 0..c {
                let inv = 1.0 / (rv[ci] + self.eps).sqrt();
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    out[i] = gd[ci] * (xd[i] - rm[ci]) * inv + bd[ci];
                }
            }
        }
        Tensor::from_vec(out, x.shape())
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let BnCache { x_hat, inv_std } = self.cache.take().expect("backward before forward");
        let (n, c, h, w) = dims4(&dout);
        let plane = (n * h * w) as f32;
        let dd = dout.data();
        let xh = x_hat.data();
        let gd = self.gamma.value.data().to_vec();
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        let mut sum_d = vec![0.0f32; c];
        let mut sum_dxh = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    dgamma[ci] += dd[i] * xh[i];
                    dbeta[ci] += dd[i];
                    sum_d[ci] += dd[i];
                    sum_dxh[ci] += dd[i] * xh[i];
                }
            }
        }
        let mut dx = vec![0.0f32; dout.len()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    // dx = γ/σ · (d − mean(d) − x̂·mean(d·x̂))
                    dx[i] = gd[ci]
                        * inv_std[ci]
                        * (dd[i] - sum_d[ci] / plane - xh[i] * sum_dxh[ci] / plane);
                }
            }
        }
        self.gamma.grad.axpy(1.0, &Tensor::from_vec(dgamma, &[c]));
        self.beta.grad.axpy(1.0, &Tensor::from_vec(dbeta, &[c]));
        Tensor::from_vec(dx, dout.shape())
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        f(&join_path(prefix, "gamma"), &mut self.gamma);
        f(&join_path(prefix, "beta"), &mut self.beta);
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        f(&join_path(prefix, "gamma"), &self.gamma);
        f(&join_path(prefix, "beta"), &self.beta);
    }

    fn kind(&self) -> &'static str {
        "bn"
    }
}

/// Activation functions used across the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)` (MobileNetV2).
    Relu6,
    /// `x · relu6(x+3)/6` (MobileNetV3).
    HSwish,
    /// `x · sigmoid(x)` (EfficientNet).
    Silu,
    /// Gaussian error linear unit, tanh approximation (BERT).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActKind {
    /// Applies the activation.
    #[must_use]
    pub fn f(self, x: f32) -> f32 {
        match self {
            ActKind::Relu => x.max(0.0),
            ActKind::Relu6 => x.clamp(0.0, 6.0),
            ActKind::HSwish => x * ((x + 3.0).clamp(0.0, 6.0)) / 6.0,
            ActKind::Silu => x * sigmoid(x),
            ActKind::Gelu => 0.5 * x * (1.0 + ((0.797_884_6) * (x + 0.044715 * x * x * x)).tanh()),
            ActKind::Sigmoid => sigmoid(x),
            ActKind::Tanh => x.tanh(),
        }
    }

    /// Derivative of the activation.
    #[must_use]
    pub fn df(self, x: f32) -> f32 {
        match self {
            ActKind::Relu => f32::from(x > 0.0),
            ActKind::Relu6 => f32::from(x > 0.0 && x < 6.0),
            ActKind::HSwish => {
                if x <= -3.0 {
                    0.0
                } else if x >= 3.0 {
                    1.0
                } else {
                    (2.0 * x + 3.0) / 6.0
                }
            }
            ActKind::Silu => {
                let s = sigmoid(x);
                s + x * s * (1.0 - s)
            }
            ActKind::Gelu => {
                let c = 0.797_884_6;
                let t = (c * (x + 0.044715 * x * x * x)).tanh();
                let dt = (1.0 - t * t) * c * (1.0 + 3.0 * 0.044715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * dt
            }
            ActKind::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            ActKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Elementwise activation layer.
#[derive(Debug)]
pub struct Act {
    /// Which nonlinearity.
    pub kind: ActKind,
    cache_x: Option<Tensor>,
}

impl Act {
    /// Creates an activation layer.
    #[must_use]
    pub fn new(kind: ActKind) -> Self {
        Self {
            kind,
            cache_x: None,
        }
    }
}

impl Layer for Act {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let k = self.kind;
        let y = x.map(|v| k.f(v));
        self.cache_x = Some(x);
        y
    }

    fn forward_ref(&self, x: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        let k = self.kind;
        x.map(|v| k.f(v))
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward before forward");
        let k = self.kind;
        dout.zip(&x, |g, v| g * k.df(v))
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor<'_>) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut RefParamVisitor<'_>) {}

    fn kind(&self) -> &'static str {
        "act"
    }
}

/// Max pooling layer.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, x_shape)
}

impl MaxPool2d {
    /// `k×k` max pooling with the given stride.
    #[must_use]
    pub fn new(k: usize, stride: usize) -> Self {
        Self {
            k,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let (y, arg) = maxpool2d(&x, self.k, self.stride);
        if ctx.train {
            self.cache = Some((arg, x.shape().to_vec()));
        }
        y
    }

    fn forward_ref(&self, x: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        maxpool2d(&x, self.k, self.stride).0
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let (arg, shape) = self.cache.take().expect("backward before forward");
        maxpool2d_backward(&dout, &arg, &shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor<'_>) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut RefParamVisitor<'_>) {}

    fn kind(&self) -> &'static str {
        "maxpool"
    }
}

/// Global average pooling `[N,C,H,W] → [N,C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cache_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if ctx.train {
            self.cache_shape = x.shape().to_vec();
        }
        global_avg_pool(&x)
    }

    fn forward_ref(&self, x: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        global_avg_pool(&x)
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        global_avg_pool_backward(&dout, &self.cache_shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor<'_>) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut RefParamVisitor<'_>) {}

    fn kind(&self) -> &'static str {
        "gap"
    }
}

/// Flattens `[N, ...] → [N, prod(...)]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cache_shape: Vec<usize>,
}

impl Flatten {
    /// Creates the layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        if ctx.train {
            self.cache_shape = x.shape().to_vec();
        }
        x.reshape(&[n, rest])
    }

    fn forward_ref(&self, x: Tensor, _ctx: &mut Ctx<'_>) -> Tensor {
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        dout.reshape(&self.cache_shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut ParamVisitor<'_>) {}

    fn visit_params_ref(&self, _prefix: &str, _f: &mut RefParamVisitor<'_>) {}

    fn kind(&self) -> &'static str {
        "flatten"
    }
}

/// Ordered container of named layers; taps each child's output.
#[derive(Default)]
pub struct Sequential {
    children: Vec<(String, Box<dyn Layer>)>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} children)", self.children.len())
    }
}

impl Sequential {
    /// An empty container.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer with an auto-generated name `"{index}_{kind}"`.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        let name = format!("{}_{}", self.children.len(), layer.kind());
        self.children.push((name, Box::new(layer)));
        self
    }

    /// Appends a boxed layer with an explicit name.
    pub fn push_named(&mut self, name: impl Into<String>, layer: Box<dyn Layer>) -> &mut Self {
        self.children.push((name.into(), layer));
        self
    }

    /// Number of direct children.
    #[must_use]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when the container has no children.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Immutable access to the children.
    #[must_use]
    pub fn children(&self) -> &[(String, Box<dyn Layer>)] {
        &self.children
    }

    /// Mutable access to the children (used by transforms like BN folding).
    pub fn children_mut(&mut self) -> &mut Vec<(String, Box<dyn Layer>)> {
        &mut self.children
    }
}

/// Whether a layer manages its own activation taps (containers do).
fn is_container(kind: &'static str) -> bool {
    matches!(kind, "seq" | "residual" | "se" | "transformer")
}

/// Folds `bn` into a preceding convolution's weights/bias:
/// `W'[c,:] = W[c,:]·γ_c/σ_c`, `b'_c = (b_c − μ_c)·γ_c/σ_c + β_c`.
fn fold_scale_shift(bn: &BatchNorm2d) -> (Vec<f32>, Vec<f32>) {
    let g = bn.gamma.value.data();
    let beta = bn.beta.value.data();
    let mu = bn.running_mean.data();
    let var = bn.running_var.data();
    let scale: Vec<f32> = g
        .iter()
        .zip(var)
        .map(|(&g, &v)| g / (v + bn.eps()).sqrt())
        .collect();
    let shift: Vec<f32> = beta
        .iter()
        .zip(mu)
        .zip(&scale)
        .map(|((&b, &m), &s)| b - m * s)
        .collect();
    (scale, shift)
}

fn fold_into(w: &mut Param, b: &mut Param, bn: &BatchNorm2d) {
    let (scale, shift) = fold_scale_shift(bn);
    let oc = w.value.shape()[0];
    let inner: usize = w.value.shape()[1..].iter().product();
    for c in 0..oc {
        for v in &mut w.value.data_mut()[c * inner..(c + 1) * inner] {
            *v *= scale[c];
        }
        let bd = b.value.data_mut();
        bd[c] = bd[c] * scale[c] + shift[c];
    }
}

impl Layer for Sequential {
    /// Folds every `Conv2d → BatchNorm2d` / `DwConv2d → BatchNorm2d` pair
    /// into the convolution (using the BN's *running* statistics) and
    /// removes the BatchNorm layer. Inference-equivalent; call only on a
    /// trained model before PTQ.
    fn fold_bn(&mut self) {
        for (_, c) in &mut self.children {
            c.fold_bn();
        }
        let mut i = 0;
        while i + 1 < self.children.len() {
            let (head, tail) = self.children.split_at_mut(i + 1);
            let first: &mut dyn Layer = head[i].1.as_mut();
            let second: &mut dyn Layer = tail[0].1.as_mut();
            let second_any: &mut dyn std::any::Any = second;
            let folded = if let Some(bn) = second_any.downcast_mut::<BatchNorm2d>() {
                let first_any: &mut dyn std::any::Any = first;
                if let Some(conv) = first_any.downcast_mut::<Conv2d>() {
                    fold_into(&mut conv.w, &mut conv.b, bn);
                    true
                } else if let Some(dw) = first_any.downcast_mut::<DwConv2d>() {
                    fold_into(&mut dw.w, &mut dw.b, bn);
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if folded {
                self.children.remove(i + 1);
            }
            i += 1;
        }
    }

    fn forward(&mut self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        if !ctx.train {
            return self.forward_ref(x, ctx);
        }
        let mut t = x;
        for (name, child) in &mut self.children {
            ctx.push(name);
            // Per-layer forward timing (`nn.fwd.<path>`); the name closure
            // only runs — and allocates — when `MERSIT_OBS` is on.
            let span = mersit_obs::span_dyn(|| format!("nn.fwd.{}", ctx.path()));
            t = child.forward(t, ctx);
            drop(span);
            if !is_container(child.kind()) {
                t = ctx.tap_activation(t);
            }
            ctx.pop();
        }
        t
    }

    fn forward_ref(&self, x: Tensor, ctx: &mut Ctx<'_>) -> Tensor {
        let mut t = x;
        for (name, child) in &self.children {
            ctx.push(name);
            let span = mersit_obs::span_dyn(|| format!("nn.fwd.{}", ctx.path()));
            t = child.forward_ref(t, ctx);
            drop(span);
            if !is_container(child.kind()) {
                t = ctx.tap_activation(t);
            }
            ctx.pop();
        }
        t
    }

    fn backward(&mut self, dout: Tensor) -> Tensor {
        let mut g = dout;
        for (_, child) in self.children.iter_mut().rev() {
            g = child.backward(g);
        }
        g
    }

    fn visit_params(&mut self, prefix: &str, f: &mut ParamVisitor<'_>) {
        for (name, child) in &mut self.children {
            child.visit_params(&join_path(prefix, name), f);
        }
    }

    fn visit_params_ref(&self, prefix: &str, f: &mut RefParamVisitor<'_>) {
        for (name, child) in &self.children {
            child.visit_params_ref(&join_path(prefix, name), f);
        }
    }

    fn kind(&self) -> &'static str {
        "seq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_check(layer: &mut dyn Layer, x: &Tensor, picks: &[usize], tol: f32) {
        // Loss = <forward(x), R> for a fixed random R.
        let mut rng = Rng::new(99);
        let y0 = layer.forward(x.clone(), &mut Ctx::training());
        let r = Tensor::randn(y0.shape(), 1.0, &mut rng);
        let dx = layer.backward(r.clone());
        let loss = |layer: &mut dyn Layer, x: &Tensor| -> f32 {
            layer
                .forward(x.clone(), &mut Ctx::training())
                .data()
                .iter()
                .zip(r.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2;
        for &i in picks {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < tol,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn linear_forward_shape_and_values() {
        let mut rng = Rng::new(1);
        let mut l = Linear::new(3, 2, &mut rng);
        l.w.value = Tensor::from_vec(vec![1., 0., 0., 0., 1., 0.], &[2, 3]);
        l.b.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let y = l.forward(
            Tensor::from_vec(vec![1., 2., 3.], &[1, 3]),
            &mut Ctx::inference(),
        );
        assert_eq!(y.data(), &[1.5, 1.5]);
    }

    #[test]
    fn linear_backward_numerical() {
        let mut rng = Rng::new(2);
        let mut l = Linear::new(5, 4, &mut rng);
        let x = Tensor::randn(&[3, 5], 1.0, &mut rng);
        numeric_check(&mut l, &x, &[0, 4, 9, 14], 1e-2);
    }

    #[test]
    fn linear_weight_grad_numerical() {
        let mut rng = Rng::new(3);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let r = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let _ = l.forward(x.clone(), &mut Ctx::training());
        let _ = l.backward(r.clone());
        let analytic = l.w.grad.clone();
        let eps = 1e-2;
        for i in 0..6 {
            let mut lp = Linear::new(3, 2, &mut Rng::new(3));
            lp.w.value = l.w.value.clone();
            lp.b.value = l.b.value.clone();
            lp.w.value.data_mut()[i] += eps;
            let yp: f32 = lp
                .forward(x.clone(), &mut Ctx::training())
                .data()
                .iter()
                .zip(r.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut lm = Linear::new(3, 2, &mut Rng::new(3));
            lm.w.value = l.w.value.clone();
            lm.b.value = l.b.value.clone();
            lm.w.value.data_mut()[i] -= eps;
            let ym: f32 = lm
                .forward(x.clone(), &mut Ctx::training())
                .data()
                .iter()
                .zip(r.data())
                .map(|(a, b)| a * b)
                .sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - analytic.data()[i]).abs() < 1e-2, "dW[{i}]");
        }
    }

    #[test]
    fn conv_backward_numerical() {
        let mut rng = Rng::new(4);
        let mut c = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        numeric_check(&mut c, &x, &[0, 13, 29, 49], 2e-2);
    }

    #[test]
    fn dwconv_layer_backward_numerical() {
        let mut rng = Rng::new(5);
        let mut c = DwConv2d::new(3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 3, 4, 4], 1.0, &mut rng);
        numeric_check(&mut c, &x, &[0, 15, 31, 47], 2e-2);
    }

    #[test]
    fn activations_and_derivatives() {
        for kind in [
            ActKind::Relu,
            ActKind::Relu6,
            ActKind::HSwish,
            ActKind::Silu,
            ActKind::Gelu,
            ActKind::Sigmoid,
            ActKind::Tanh,
        ] {
            // Derivative by finite difference at generic points.
            for &x in &[-4.0f32, -1.3, -0.2, 0.4, 1.7, 4.5] {
                let eps = 1e-3;
                let num = (kind.f(x + eps) - kind.f(x - eps)) / (2.0 * eps);
                assert!(
                    (num - kind.df(x)).abs() < 2e-2,
                    "{kind:?} at {x}: {num} vs {}",
                    kind.df(x)
                );
            }
        }
        assert_eq!(ActKind::Relu6.f(9.0), 6.0);
        assert_eq!(ActKind::Relu.f(-2.0), 0.0);
    }

    #[test]
    fn bn_train_normalizes_batch() {
        let mut rng = Rng::new(6);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[8, 3, 4, 4], 3.0, &mut rng).map(|v| v + 5.0);
        let y = bn.forward(x, &mut Ctx::training());
        // Per-channel mean ≈ 0, var ≈ 1 after normalization.
        let (n, c, h, w) = mersit_tensor::dims4(&y);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        vals.push(y.at(&[ni, ci, yy, xx]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn bn_backward_numerical() {
        let mut rng = Rng::new(7);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = Tensor::from_vec(vec![1.3, 0.7], &[2]);
        bn.beta.value = Tensor::from_vec(vec![0.1, -0.2], &[2]);
        let x = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        numeric_check(&mut bn, &x, &[0, 7, 19, 35], 5e-2);
    }

    #[test]
    fn sequential_forward_backward_chain() {
        let mut rng = Rng::new(8);
        let mut net = Sequential::new();
        net.push(Linear::new(6, 5, &mut rng));
        net.push(Act::new(ActKind::Tanh));
        net.push(Linear::new(5, 3, &mut rng));
        let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
        numeric_check(&mut net, &x, &[0, 5, 11, 23], 2e-2);
    }

    #[test]
    fn sequential_paths_and_params() {
        let mut rng = Rng::new(9);
        let mut net = Sequential::new();
        net.push(Linear::new(2, 2, &mut rng));
        net.push(Act::new(ActKind::Relu));
        let mut names = Vec::new();
        net.visit_params("net", &mut |p, _| names.push(p.to_owned()));
        assert_eq!(names, vec!["net.0_linear.w", "net.0_linear.b"]);
    }

    #[test]
    fn taps_fire_per_noncontainer_child() {
        struct Counter(Vec<String>);
        impl crate::layer::Tap for Counter {
            fn activation(&mut self, site: crate::site::Site<'_>, t: Tensor) -> Tensor {
                self.0.push(site.path.to_owned());
                t
            }
        }
        let mut rng = Rng::new(10);
        let mut net = Sequential::new();
        net.push(Linear::new(3, 3, &mut rng));
        net.push(Act::new(ActKind::Relu));
        net.push(Linear::new(3, 2, &mut rng));
        let mut tap = Counter(Vec::new());
        let mut ctx = Ctx::with_tap(&mut tap);
        let _ = net.forward(Tensor::zeros(&[1, 3]), &mut ctx);
        assert_eq!(tap.0, vec!["0_linear", "1_act", "2_linear"]);
    }

    #[test]
    fn maxpool_and_gap_layers() {
        let mut rng = Rng::new(11);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let mut mp = MaxPool2d::new(2, 2);
        let y = mp.forward(x.clone(), &mut Ctx::inference());
        assert_eq!(y.shape(), &[2, 3, 3, 3]);
        let mut gap = GlobalAvgPool::new();
        let z = gap.forward(x, &mut Ctx::inference());
        assert_eq!(z.shape(), &[2, 3]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = fl.forward(x, &mut Ctx::training());
        assert_eq!(y.shape(), &[2, 48]);
        let back = fl.backward(y);
        assert_eq!(back.shape(), &[2, 3, 4, 4]);
    }
}
