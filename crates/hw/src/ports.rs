//! The common decoder interface shared by the FP8, Posit8 and MERSIT8
//! hardware decoders.
//!
//! Per Fig. 2, a decoder extracts from an 8-bit code word:
//!
//! * the sign,
//! * the effective exponent `exp_eff` (a `P`-bit signed bus), and
//! * the effective significand `sig` (an `M`-bit left-aligned bus with the
//!   hidden bit at the MSB),
//!
//! plus zero / special flags. For a finite code the represented magnitude is
//! `sig × 2^(exp_eff − (M−1))` — identical to the software
//! [`mersit_core::Decoded`] convention, which is what the cross-check tests
//! rely on.

use mersit_core::MacParams;
use mersit_netlist::{Bus, NetId, Netlist};

/// The output ports of a hardware format decoder.
#[derive(Debug, Clone)]
pub struct DecoderOutputs {
    /// Sign bit (1 = negative).
    pub sign: NetId,
    /// Effective exponent, `P`-bit two's complement.
    pub exp_eff: Bus,
    /// Left-aligned significand including the hidden bit, `M` bits.
    /// Forced to zero when the operand is zero.
    pub sig: Bus,
    /// Set when the operand is zero.
    pub is_zero: NetId,
    /// Set when the operand is ±∞ / NaN / NaR.
    pub is_special: NetId,
}

/// A hardware decoder generator for one format configuration.
pub trait Decoder {
    /// Format name (matches [`mersit_core::Format::name`]).
    fn name(&self) -> String;

    /// MAC sizing parameters of the format.
    fn params(&self) -> MacParams;

    /// Instantiates the decoder logic inside `nl`, consuming the 8-bit
    /// `code` bus, inside the caller's current scope.
    fn build(&self, nl: &mut Netlist, code: &Bus) -> DecoderOutputs;
}

/// Builds a standalone decoder netlist (ports: `code` in, fields out) —
/// used for per-block area/power studies and Verilog dumps.
pub fn standalone_decoder(dec: &dyn Decoder) -> (Netlist, Bus, DecoderOutputs) {
    let mut nl = Netlist::new(format!("decoder_{}", sanitize(&dec.name())));
    let code = nl.input("code", 8);
    let out = nl.scoped("decoder", |nl| dec.build(nl, &code));
    nl.output("sign", &Bus(vec![out.sign]));
    nl.output("exp_eff", &out.exp_eff);
    nl.output("sig", &out.sig);
    nl.output("is_zero", &Bus(vec![out.is_zero]));
    nl.output("is_special", &Bus(vec![out.is_special]));
    (nl, code, out)
}

pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("MERSIT(8,2)"), "mersit_8_2_");
        assert_eq!(sanitize("FP(8,4)"), "fp_8_4_");
    }
}
