//! A multi-lane dot-product engine: `N` format multipliers feeding one
//! Kulisch accumulator through an alignment stage and a signed adder tree —
//! the accelerator-tile shape a MERSIT/Posit/FP8 MAC would actually be
//! deployed in. Extends the paper's single-MAC comparison (Fig. 7) to the
//! regime where the accumulator cost is amortized across lanes.

use crate::mult::build_multiplier;
use crate::ports::Decoder;
use mersit_core::MacParams;
use mersit_netlist::{Bus, Netlist};

/// Scope names inside the engine.
pub mod scopes {
    /// Per-lane alignment shifters.
    pub const ALIGN: &str = "align";
    /// The signed adder tree.
    pub const TREE: &str = "tree";
    /// The Kulisch accumulator.
    pub const ACCUMULATOR: &str = "accumulator";
}

/// A synthesized `N`-lane dot-product engine.
#[derive(Debug)]
pub struct DotEngine {
    /// The gate-level design.
    pub netlist: Netlist,
    /// Per-lane weight code inputs.
    pub w_codes: Vec<Bus>,
    /// Per-lane activation code inputs.
    pub a_codes: Vec<Bus>,
    /// Synchronous accumulator clear.
    pub clear: Bus,
    /// Accumulator output (two's complement; LSB weight
    /// `2^(2·e_min − (2M−2))`).
    pub acc: Bus,
    /// Format MAC parameters.
    pub params: MacParams,
    /// Number of lanes.
    pub lanes: usize,
    /// Accumulator width.
    pub acc_width: usize,
}

impl DotEngine {
    /// Builds an `N`-lane engine with `v_ovf` accumulation headroom bits.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a power of two, or the accumulator exceeds
    /// the 63-bit simulation limit.
    #[must_use]
    pub fn build(dec: &dyn Decoder, lanes: usize, v_ovf: u32) -> Self {
        assert!(
            lanes.is_power_of_two() && lanes >= 2,
            "lanes must be 2^k >= 2"
        );
        let params = dec.params();
        // One exact product spans W + 2M − 2 bits; the tree adds log2(N)
        // plus one sign bit.
        let lane_w = (params.w + 2 * params.m - 2) as usize;
        let tree_w = lane_w + lanes.trailing_zeros() as usize + 1;
        let acc_width = tree_w + v_ovf as usize;
        assert!(
            acc_width <= 63,
            "accumulator of {acc_width} bits exceeds the 63-bit simulation limit"
        );
        let mut nl = Netlist::new(format!(
            "dot{lanes}_{}",
            crate::ports::sanitize(&dec.name())
        ));
        let mut w_codes = Vec::with_capacity(lanes);
        let mut a_codes = Vec::with_capacity(lanes);
        for l in 0..lanes {
            w_codes.push(nl.input(format!("w{l}"), 8));
            a_codes.push(nl.input(format!("a{l}"), 8));
        }
        let clear = nl.input("clear", 1);

        // Lane products, aligned into the accumulator frame and signed.
        let mut lane_vals: Vec<Bus> = Vec::with_capacity(lanes);
        for l in 0..lanes {
            let mult = nl.scoped(format!("lane{l}"), |nl| {
                build_multiplier(nl, dec, &w_codes[l], &a_codes[l])
            });
            let aligned = nl.scoped(scopes::ALIGN, |nl| {
                let p1 = mult.exp_sum.width();
                let bias = -2 * i64::from(params.e_min);
                let bias_lit = nl.lit(p1, (bias as u64) & ((1u64 << p1) - 1));
                let (shift_full, _) = nl.ripple_add(&mult.exp_sum, &bias_lit, None);
                let sh_w = (64 - u64::from(params.w - 1).leading_zeros()) as usize;
                let shift = shift_full.slice(0, sh_w);
                let wide = nl.zext(&mult.prod, lane_w);
                nl.barrel_shl(&wide, &shift)
            });
            // Conditional negation into tree width: zero-extend the
            // (unsigned) aligned product first, then two's-complement
            // negate across the full tree width when the sign is set.
            let signed = nl.scoped(scopes::TREE, |nl| {
                let wide = nl.zext(&aligned, tree_w);
                let x = Bus(wide
                    .iter()
                    .map(|&b| nl.xor2(b, mult.sign))
                    .collect::<Vec<_>>());
                let zero = nl.lit(tree_w, 0);
                let (v, _) = nl.ripple_add(&x, &zero, Some(mult.sign));
                v
            });
            lane_vals.push(signed);
        }

        // Signed adder tree.
        let tree_out = nl.scoped(scopes::TREE, |nl| {
            let mut layer = lane_vals;
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len() / 2);
                for pair in layer.chunks(2) {
                    let a = nl.sext(&pair[0], tree_w);
                    let b = nl.sext(&pair[1], tree_w);
                    let (s, _) = nl.ripple_add(&a, &b, None);
                    next.push(s);
                }
                layer = next;
            }
            layer.pop().expect("non-empty tree")
        });

        // Kulisch accumulator.
        let acc = nl.scoped(scopes::ACCUMULATOR, |nl| {
            let (ids, q) = nl.dff_bus_uninit(acc_width);
            let t = nl.sext(&tree_out, acc_width);
            let (sum, _) = nl.ripple_add(&q, &t, None);
            let nclear = nl.not(clear.bit(0));
            let next = Bus(sum.iter().map(|&b| nl.and2(b, nclear)).collect::<Vec<_>>());
            nl.connect_dff_bus(&ids, &next);
            q
        });
        nl.output("acc", &acc);
        Self {
            netlist: nl,
            w_codes,
            a_codes,
            clear,
            acc,
            params,
            lanes,
            acc_width,
        }
    }

    /// LSB weight exponent of the accumulator.
    #[must_use]
    pub fn acc_lsb_exp(&self) -> i32 {
        2 * self.params.e_min - (2 * self.params.m as i32 - 2)
    }

    /// Converts a signed accumulator reading to its real value.
    #[must_use]
    pub fn acc_value(&self, raw: i64) -> f64 {
        raw as f64 * 2f64.powi(self.acc_lsb_exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dec_mersit::MersitDecoder;
    use crate::dec_posit::PositDecoder;
    use crate::golden::GoldenMac;
    use mersit_core::{Format, Mersit, Posit};
    use mersit_netlist::Simulator;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        *seed >> 33
    }

    fn check_engine(dec: &dyn Decoder, fmt: &dyn Format, lanes: usize) {
        let eng = DotEngine::build(dec, lanes, 6);
        let mut golden = GoldenMac::new(fmt, eng.acc_width);
        let mut sim = Simulator::new(&eng.netlist);
        sim.reset();
        sim.set(&eng.clear, 1);
        sim.clock();
        sim.set(&eng.clear, 0);
        let mut seed = 0xD07u64;
        for step in 0..12 {
            for l in 0..lanes {
                let w = (lcg(&mut seed) & 0xFF) as u16;
                let a = (lcg(&mut seed) & 0xFF) as u16;
                sim.set(&eng.w_codes[l], u64::from(w));
                sim.set(&eng.a_codes[l], u64::from(a));
                golden.mac(w, a);
            }
            sim.clock();
            assert_eq!(
                sim.get_signed(&eng.acc),
                golden.acc_raw(),
                "{} lanes={lanes} step {step}",
                fmt.name()
            );
        }
        let got = eng.acc_value(sim.get_signed(&eng.acc));
        assert!((got - golden.value_f64()).abs() < 1e-9);
    }

    #[test]
    fn mersit_engine_matches_golden_2_and_4_lanes() {
        let f = Mersit::new(8, 2).unwrap();
        let dec = MersitDecoder::new(f.clone());
        check_engine(&dec, &f, 2);
        check_engine(&dec, &f, 4);
    }

    #[test]
    fn posit_engine_matches_golden() {
        let f = Posit::new(8, 1).unwrap();
        check_engine(&PositDecoder::new(f.clone()), &f, 4);
    }

    #[test]
    #[should_panic(expected = "lanes must be 2^k")]
    fn rejects_non_power_of_two_lanes() {
        let f = Mersit::new(8, 2).unwrap();
        let _ = DotEngine::build(&MersitDecoder::new(f), 3, 6);
    }

    #[test]
    fn amortization_shrinks_per_mac_cost() {
        use mersit_netlist::AreaReport;
        let f = Mersit::new(8, 2).unwrap();
        let dec = MersitDecoder::new(f);
        let one = crate::mac::MacUnit::build_with_margin(&dec, 6);
        let four = DotEngine::build(&dec, 4, 6);
        let a1 = AreaReport::of(&one.netlist).total_um2;
        let a4 = AreaReport::of(&four.netlist).total_um2 / 4.0;
        assert!(
            a4 < a1,
            "per-lane engine area {a4:.0} should undercut standalone MAC {a1:.0}"
        );
    }
}
