//! Bit-exact software reference of the Kulisch MAC — the golden model the
//! gate-level designs are verified against, and the fast path for streaming
//! large DNN workloads when only activity statistics are needed.

use mersit_core::{Format, MacParams, ValueClass};

/// Software mirror of [`crate::mac::MacUnit`]: identical accumulator
/// semantics (same LSB weight, same wrap-around width).
#[derive(Debug)]
pub struct GoldenMac<'a> {
    fmt: &'a dyn Format,
    params: MacParams,
    acc: i128,
    acc_width: usize,
    /// Exact f64 dot product of the decoded operand values (for checking
    /// Kulisch exactness).
    dot_f64: f64,
}

impl<'a> GoldenMac<'a> {
    /// Creates a golden MAC for `fmt` with an `acc_width`-bit accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `acc_width` exceeds 127 bits.
    #[must_use]
    pub fn new(fmt: &'a dyn Format, acc_width: usize) -> Self {
        assert!(acc_width < 128, "accumulator too wide for i128");
        Self {
            fmt,
            params: MacParams::of(fmt),
            acc: 0,
            acc_width,
            dot_f64: 0.0,
        }
    }

    /// Clears the accumulator.
    pub fn clear(&mut self) {
        self.acc = 0;
        self.dot_f64 = 0.0;
    }

    /// Accumulates one `w × a` product (8-bit codes).
    pub fn mac(&mut self, w_code: u16, a_code: u16) {
        if self.fmt.classify(w_code) != ValueClass::Finite
            || self.fmt.classify(a_code) != ValueClass::Finite
        {
            mersit_obs::incr("hw.golden.special_skipped");
            return; // zero or special-gated: no contribution
        }
        mersit_obs::incr("hw.golden.mac_ops");
        let dw = self.fmt.fields(w_code).expect("finite");
        let da = self.fmt.fields(a_code).expect("finite");
        let shift = dw.exp_eff + da.exp_eff - 2 * self.params.e_min;
        debug_assert!(shift >= 0, "alignment shift must be non-negative");
        let prod = i128::from(dw.sig) * i128::from(da.sig);
        let contrib = prod << shift;
        let signed = if dw.sign ^ da.sign { -contrib } else { contrib };
        self.acc = wrap(self.acc + signed, self.acc_width);
        self.dot_f64 += dw.value() * da.value();
    }

    /// Raw accumulator contents as a sign-extended `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is wider than 63 bits.
    #[must_use]
    pub fn acc_raw(&self) -> i64 {
        assert!(self.acc_width <= 63, "raw read limited to 63 bits");
        self.acc as i64
    }

    /// The accumulator interpreted as a real value.
    #[must_use]
    pub fn acc_value(&self) -> f64 {
        self.acc as f64 * 2f64.powi(2 * self.params.e_min - (2 * self.params.m as i32 - 2))
    }

    /// The exact f64 dot product of the decoded operands.
    #[must_use]
    pub fn value_f64(&self) -> f64 {
        self.dot_f64
    }
}

/// Wraps `v` to `width`-bit two's complement.
fn wrap(v: i128, width: usize) -> i128 {
    let m = 1i128 << width;
    let x = v.rem_euclid(m);
    if x >= m / 2 {
        x - m
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_core::Mersit;

    #[test]
    fn golden_matches_f64_dot_product() {
        let f = Mersit::new(8, 2).unwrap();
        let mut g = GoldenMac::new(&f, 52);
        let pairs = [(0x45u16, 0x92u16), (0x10, 0x20), (0xC4, 0x33), (0x7E, 0x81)];
        for (w, a) in pairs {
            g.mac(w, a);
        }
        assert!((g.acc_value() - g.value_f64()).abs() < 1e-12);
    }

    #[test]
    fn zero_and_special_contribute_nothing() {
        let f = Mersit::new(8, 2).unwrap();
        let mut g = GoldenMac::new(&f, 52);
        g.mac(0x3F, 0x45); // zero × finite
        g.mac(0x7F, 0x45); // inf × finite
        assert_eq!(g.acc_raw(), 0);
    }

    #[test]
    fn wrap_behaves_like_twos_complement() {
        assert_eq!(wrap(7, 3), -1);
        assert_eq!(wrap(8, 3), 0);
        assert_eq!(wrap(-9, 3), -1);
        assert_eq!(wrap(3, 3), 3);
        assert_eq!(wrap(-4, 3), -4);
    }

    #[test]
    fn clear_resets_state() {
        let f = Mersit::new(8, 2).unwrap();
        let mut g = GoldenMac::new(&f, 52);
        g.mac(0x45, 0x45);
        assert_ne!(g.acc_raw(), 0);
        g.clear();
        assert_eq!(g.acc_raw(), 0);
        assert_eq!(g.value_f64(), 0.0);
    }
}
