//! Bit-exact software reference of the Kulisch MAC — the golden model the
//! gate-level designs are verified against, and the anchor of the
//! software/hardware co-verification chain.
//!
//! # Harness invariants
//!
//! * **Contribution rule.** Each finite `w × a` code pair contributes
//!   `±(sig_w · sig_a) << (exp_w + exp_a − 2·e_min)` — significand
//!   product, aligned so the accumulator LSB sits at `2·(e_min − (m−1))`.
//!   Zero and special codes contribute nothing (the hardware gates them),
//!   counted in `hw.golden.special_skipped`.
//! * **Wrap rule.** The accumulator reduces to `acc_width`-bit two's
//!   complement after *every* addition, with the same reduction the
//!   bit-true executor applies ([`mersit_core::wrap_i128`]). Because
//!   `x mod 2^w` is a ring homomorphism, per-step wrapping equals
//!   wrapping an exact sum once — which is exactly why
//!   `mersit-ptq::dot_bit_true` (raw `i128` sum, one wrap at the end)
//!   is bit-identical to this model on every code vector, pinned by
//!   `mersit-ptq/tests/bittrue_golden.rs`.
//! * **Width contract.** The caller picks `acc_width`; gate-level
//!   equivalence uses [`crate::mac::MacUnit::acc_width_for`] and the bit-true
//!   executor uses `FixTable::acc_width` — the two formulas agree
//!   whenever the decoder significand width equals the MAC's `M`
//!   (all hardware formats; pinned in `mersit-core::fixpoint` tests).
//! * **Real-value interpretation.** [`GoldenMac::acc_value`] weights the
//!   raw accumulator by `2^(2·e_min − (2m−2))`; it equals the exact f64
//!   dot product ([`GoldenMac::value_f64`]) while no wrap has discarded
//!   high bits *and* the format's decoder reports `m`-bit significands.
//!
//! ```
//! use mersit_core::Mersit;
//! use mersit_hw::GoldenMac;
//!
//! let f = Mersit::new(8, 2).unwrap();
//! let mut g = GoldenMac::new(&f, 52);
//! g.mac(0b0_1_01_0110, 0b0_1_01_0110); // 2.75 × 2.75
//! assert!((g.acc_value() - 2.75 * 2.75).abs() < 1e-12);
//! // The wrapped accumulator is what co-verification compares.
//! assert_eq!(g.acc_wrapped(), i128::from(g.acc_raw()));
//! ```

use mersit_core::{wrap_i128, Format, MacParams, ValueClass};

/// Software mirror of [`crate::mac::MacUnit`]: identical accumulator
/// semantics (same LSB weight, same wrap-around width).
#[derive(Debug)]
pub struct GoldenMac<'a> {
    fmt: &'a dyn Format,
    params: MacParams,
    acc: i128,
    acc_width: usize,
    /// Exact f64 dot product of the decoded operand values (for checking
    /// Kulisch exactness).
    dot_f64: f64,
}

impl<'a> GoldenMac<'a> {
    /// Creates a golden MAC for `fmt` with an `acc_width`-bit accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `acc_width` exceeds 127 bits.
    #[must_use]
    pub fn new(fmt: &'a dyn Format, acc_width: usize) -> Self {
        assert!(acc_width < 128, "accumulator too wide for i128");
        Self {
            fmt,
            params: MacParams::of(fmt),
            acc: 0,
            acc_width,
            dot_f64: 0.0,
        }
    }

    /// Clears the accumulator.
    pub fn clear(&mut self) {
        self.acc = 0;
        self.dot_f64 = 0.0;
    }

    /// Accumulates one `w × a` product (8-bit codes).
    pub fn mac(&mut self, w_code: u16, a_code: u16) {
        if self.fmt.classify(w_code) != ValueClass::Finite
            || self.fmt.classify(a_code) != ValueClass::Finite
        {
            mersit_obs::incr("hw.golden.special_skipped");
            return; // zero or special-gated: no contribution
        }
        mersit_obs::incr("hw.golden.mac_ops");
        let dw = self.fmt.fields(w_code).expect("finite");
        let da = self.fmt.fields(a_code).expect("finite");
        let shift = dw.exp_eff + da.exp_eff - 2 * self.params.e_min;
        debug_assert!(shift >= 0, "alignment shift must be non-negative");
        let prod = i128::from(dw.sig) * i128::from(da.sig);
        let contrib = prod << shift;
        let signed = if dw.sign ^ da.sign { -contrib } else { contrib };
        self.acc = wrap_i128(self.acc + signed, self.acc_width);
        self.dot_f64 += dw.value() * da.value();
    }

    /// Raw accumulator contents as a sign-extended `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator is wider than 63 bits.
    #[must_use]
    pub fn acc_raw(&self) -> i64 {
        assert!(self.acc_width <= 63, "raw read limited to 63 bits");
        self.acc as i64
    }

    /// The full wrapped accumulator as a sign-extended `i128` — the value
    /// the bit-true executor's scalar reference must reproduce exactly.
    /// Valid at every constructible width (unlike [`GoldenMac::acc_raw`],
    /// which is limited to 63 bits).
    #[must_use]
    pub fn acc_wrapped(&self) -> i128 {
        self.acc
    }

    /// The accumulator width this MAC wraps to.
    #[must_use]
    pub fn acc_width(&self) -> usize {
        self.acc_width
    }

    /// The accumulator interpreted as a real value.
    #[must_use]
    pub fn acc_value(&self) -> f64 {
        self.acc as f64 * 2f64.powi(2 * self.params.e_min - (2 * self.params.m as i32 - 2))
    }

    /// The exact f64 dot product of the decoded operands.
    #[must_use]
    pub fn value_f64(&self) -> f64 {
        self.dot_f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_core::Mersit;

    #[test]
    fn golden_matches_f64_dot_product() {
        let f = Mersit::new(8, 2).unwrap();
        let mut g = GoldenMac::new(&f, 52);
        let pairs = [(0x45u16, 0x92u16), (0x10, 0x20), (0xC4, 0x33), (0x7E, 0x81)];
        for (w, a) in pairs {
            g.mac(w, a);
        }
        assert!((g.acc_value() - g.value_f64()).abs() < 1e-12);
    }

    #[test]
    fn zero_and_special_contribute_nothing() {
        let f = Mersit::new(8, 2).unwrap();
        let mut g = GoldenMac::new(&f, 52);
        g.mac(0x3F, 0x45); // zero × finite
        g.mac(0x7F, 0x45); // inf × finite
        assert_eq!(g.acc_raw(), 0);
        assert_eq!(g.acc_wrapped(), 0);
    }

    #[test]
    fn wrap_behaves_like_twos_complement() {
        // The golden MAC wraps through the shared core reduction.
        assert_eq!(wrap_i128(7, 3), -1);
        assert_eq!(wrap_i128(8, 3), 0);
        assert_eq!(wrap_i128(-9, 3), -1);
        assert_eq!(wrap_i128(3, 3), 3);
        assert_eq!(wrap_i128(-4, 3), -4);
    }

    #[test]
    fn clear_resets_state() {
        let f = Mersit::new(8, 2).unwrap();
        let mut g = GoldenMac::new(&f, 52);
        g.mac(0x45, 0x45);
        assert_ne!(g.acc_raw(), 0);
        g.clear();
        assert_eq!(g.acc_raw(), 0);
        assert_eq!(g.value_f64(), 0.0);
    }

    #[test]
    fn acc_wrapped_supports_wide_accumulators() {
        // A 100-bit accumulator: acc_raw would panic, acc_wrapped works.
        let f = Mersit::new(8, 2).unwrap();
        let mut g = GoldenMac::new(&f, 100);
        g.mac(0x45, 0x45);
        assert_ne!(g.acc_wrapped(), 0);
        assert_eq!(g.acc_width(), 100);
    }
}
