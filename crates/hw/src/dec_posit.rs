//! The Posit hardware decoder — 1-bit-resolution regime decoding.
//!
//! Posit's regime is a unary run of identical bits, so the decoder needs:
//!
//! 1. a conditional bitwise inversion (`x = body ⊕ r0`) to normalize the
//!    run to zeros,
//! 2. a full-width leading-zero counter (1-bit resolution — this is the
//!    expensive part the paper contrasts with MERSIT's grouped LZD),
//! 3. a full-width dynamic shifter with 1-bit granularity, and
//! 4. regime arithmetic `k = r0 ? r−1 : −r`, folded into a decrementer plus
//!    an XNOR row using `−r = ~(r−1)`.
//!
//! The effective exponent `k·2^es + exp` is free (bit concatenation).

use crate::ports::{Decoder, DecoderOutputs};
use mersit_core::{Format, MacParams, Posit};
use mersit_netlist::{Bus, Netlist};

/// Generates Posit(8,es) decoders (paper flavor: sign-magnitude body).
#[derive(Debug, Clone)]
pub struct PositDecoder {
    fmt: Posit,
}

impl PositDecoder {
    /// Wraps a Posit format (must be 8 bits wide).
    ///
    /// # Panics
    ///
    /// Panics if the format is not 8 bits.
    #[must_use]
    pub fn new(fmt: Posit) -> Self {
        assert_eq!(fmt.bits(), 8, "hardware decoders are 8-bit");
        Self { fmt }
    }

    /// The wrapped format.
    #[must_use]
    pub fn format(&self) -> &Posit {
        &self.fmt
    }
}

impl Decoder for PositDecoder {
    fn name(&self) -> String {
        self.fmt.name()
    }

    fn params(&self) -> MacParams {
        MacParams::of(&self.fmt)
    }

    fn build(&self, nl: &mut Netlist, code: &Bus) -> DecoderOutputs {
        assert_eq!(code.width(), 8, "code bus must be 8 bits");
        let es = self.fmt.es() as usize;
        let body_w = 7usize;
        let p = self.params().p as usize;
        let max_fb = self.fmt.max_frac_bits() as usize;

        let sign = code.bit(7);
        let body = code.slice(0, body_w);
        let r0 = code.bit(6);

        // Special patterns.
        let is_zero = nl.scoped("special", |nl| nl.is_zero(&body));
        let is_special = nl.scoped("special", |nl| nl.is_ones(&body));
        let nz = nl.not(is_zero);
        let nsp = nl.not(is_special);
        let finite = nl.and2(nz, nsp);

        // 1. Normalize the regime run to zeros.
        let x = nl.scoped("normalize", |nl| {
            Bus(body.iter().map(|&b| nl.xor2(b, r0)).collect())
        });

        // 2. Full-width leading-zero count (1-bit resolution).
        let r = nl.scoped("lzc", |nl| nl.leading_zero_count(&x));

        // 4. Regime: d = r−1, then k = r0 ? d : ~d  (since −r = ~(r−1)).
        let k = nl.scoped("regime", |nl| {
            let minus1 = nl.lit(r.width(), (1u64 << r.width()) - 1);
            let (d, _) = nl.ripple_add(&r, &minus1, None);
            let kw = r.width() + 1;
            let dpad = nl.zext(&d, kw);
            Bus(dpad.iter().map(|&b| nl.xnor2(b, r0)).collect())
        });

        // 3. Dynamic shifter: drop the regime run and its terminator.
        let shifted = nl.scoped("shifter", |nl| {
            let sh = nl.increment(&r).slice(0, 3);
            nl.barrel_shl(&body, &sh)
        });
        let exp = shifted.slice(body_w - es, body_w);
        let frac = shifted.slice(body_w - es - max_fb, body_w - es);

        // Significand: hidden bit + left-aligned fraction, gated by `finite`.
        let mut sig_bits: Vec<_> = frac.iter().map(|&b| nl.and2(b, finite)).collect();
        sig_bits.push(finite);
        let sig = Bus(sig_bits);

        // 5. Effective exponent = {k, exp} (pure wiring), sign-extended to P.
        let eff = exp.concat(&k);
        let exp_eff = nl.sext(&eff, p);

        DecoderOutputs {
            sign,
            exp_eff,
            sig,
            is_zero,
            is_special,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::standalone_decoder;
    use mersit_core::ValueClass;
    use mersit_netlist::Simulator;

    fn check_against_golden(es: u32) {
        let fmt = Posit::new(8, es).unwrap();
        let dec = PositDecoder::new(fmt.clone());
        let (nl, code, out) = standalone_decoder(&dec);
        let mut sim = Simulator::new(&nl);
        for c in 0..256u16 {
            sim.set(&code, u64::from(c));
            sim.step();
            match fmt.classify(c) {
                ValueClass::Finite => {
                    let d = fmt.fields(c).unwrap();
                    assert_eq!(sim.peek_output("is_zero"), 0, "code {c:#010b}");
                    assert_eq!(sim.peek_output("is_special"), 0, "code {c:#010b}");
                    assert_eq!(sim.peek_output("sign"), u64::from(d.sign), "code {c:#010b}");
                    assert_eq!(
                        sim.get_signed(&out.exp_eff),
                        i64::from(d.exp_eff),
                        "es={es} code {c:#010b}"
                    );
                    assert_eq!(
                        sim.get(&out.sig),
                        u64::from(d.sig),
                        "es={es} code {c:#010b}"
                    );
                }
                ValueClass::Zero => {
                    assert_eq!(sim.peek_output("is_zero"), 1, "code {c:#010b}");
                    assert_eq!(sim.get(&out.sig), 0, "code {c:#010b}");
                }
                ValueClass::Infinite => {
                    assert_eq!(sim.peek_output("is_special"), 1, "code {c:#010b}");
                    assert_eq!(sim.get(&out.sig), 0, "code {c:#010b}");
                }
                ValueClass::Nan => unreachable!("paper posit has no NaN"),
            }
        }
    }

    #[test]
    fn posit81_decoder_matches_golden_on_all_codes() {
        check_against_golden(1);
    }

    #[test]
    fn posit80_decoder_matches_golden_on_all_codes() {
        check_against_golden(0);
    }

    #[test]
    fn posit82_decoder_matches_golden_on_all_codes() {
        check_against_golden(2);
    }

    #[test]
    fn posit83_decoder_matches_golden_on_all_codes() {
        check_against_golden(3);
    }

    #[test]
    fn posit_decoder_larger_than_mersit() {
        // §1: "an 8-bit Posit multiplier incurs substantial penalties" —
        // at decoder level the paper reports 830 µm² vs 338 µm² (2.45×).
        use crate::dec_mersit::MersitDecoder;
        use mersit_core::Mersit;
        use mersit_netlist::AreaReport;
        let (pn, _, _) = standalone_decoder(&PositDecoder::new(Posit::new(8, 1).unwrap()));
        let (mn, _, _) = standalone_decoder(&MersitDecoder::new(Mersit::new(8, 2).unwrap()));
        let pa = AreaReport::of(&pn).total_um2;
        let ma = AreaReport::of(&mn).total_um2;
        assert!(
            pa > 1.5 * ma,
            "Posit decoder ({pa:.0} um^2) should be well above MERSIT ({ma:.0} um^2)"
        );
    }
}
