//! The two "particularly challenging" decoder sub-blocks of §3.3 / Fig. 5b:
//! the small leading-zero detector over the EC AND-flags, and the
//! `k × (2^es − 1)` effective-exponent unit.
//!
//! # Harness invariants
//!
//! * **First-zero semantics.** [`first_zero_detector`] scans the EC
//!   AND-flags MSB-group-first and one-hot-selects the first group that
//!   is *not* all ones — that group is the exponent EC; every group
//!   before it extends the regime. `none` fires exactly on the all-ones
//!   flag patterns, which is how the decoder recognizes the reserved
//!   zero / ±∞ codes without a separate comparator.
//! * **Exponent-unit exactness.** The `k × (2^es − 1)` unit computes the
//!   regime contribution as `(k << es) − k` in gates; its sum with the
//!   EC exponent equals the software decoder's `exp_eff` for **all 256
//!   codes** of every MERSIT format under test — any mismatch would
//!   break the bit-true chain at the very first decode stage.
//! * Both blocks are purely combinational: same code in, same fields
//!   out, with no state to de-synchronize golden and gate-level runs.

use mersit_netlist::{Bus, NetId, Netlist, CONST0};

/// Result of the first-zero detector over EC flags.
#[derive(Debug, Clone)]
pub struct FirstZero {
    /// One-hot select: `sel[g]` is set when group `g` is the exponent EC.
    pub sel: Vec<NetId>,
    /// Binary index of the exponent EC.
    pub index: Bus,
    /// Set when *no* group contains a zero (the zero / ±∞ patterns).
    pub none: NetId,
}

/// Builds the first-zero detector of the MERSIT decoding scheme: `flags[g]`
/// is the AND of EC `g`'s bits (`1` = all ones); the detector finds the
/// first `0`, MSB group first. For MERSIT(8,2) this is the "3-bit LZD unit"
/// of Fig. 5b.
///
/// # Panics
///
/// Panics on an empty flag list.
#[must_use]
pub fn first_zero_detector(nl: &mut Netlist, flags: &[NetId]) -> FirstZero {
    assert!(!flags.is_empty(), "no EC flags");
    let g_count = flags.len();
    let index_w = (usize::BITS - (g_count - 1).leading_zeros()).max(1) as usize;
    let mut sel = Vec::with_capacity(g_count);
    // prefix[g] = flags[0..g] all ones (i.e. no zero seen before g).
    let mut prefix: NetId = mersit_netlist::CONST1;
    for (g, &fl) in flags.iter().enumerate() {
        let nfl = nl.not(fl);
        let here = if g == 0 { nfl } else { nl.and2(prefix, nfl) };
        sel.push(here);
        prefix = if g == 0 { fl } else { nl.and2(prefix, fl) };
    }
    let none = prefix;
    // Binary index: bit j = OR of sel[g] for g with bit j set.
    let mut index = Vec::with_capacity(index_w);
    for j in 0..index_w {
        let terms: Vec<NetId> = sel
            .iter()
            .enumerate()
            .filter(|(g, _)| (g >> j) & 1 == 1)
            .map(|(_, &s)| s)
            .collect();
        index.push(if terms.is_empty() {
            CONST0
        } else {
            nl.or_reduce(&terms)
        });
    }
    FirstZero {
        sel,
        index: Bus(index),
        none,
    }
}

/// Builds the `k × (2^es − 1)` unit: multiplies the signed regime `k` by the
/// constant `2^es − 1`, producing an `out_width`-bit signed result
/// (`(k << es) − k`, the "×3" structure of Fig. 5b when `es = 2`).
///
/// # Panics
///
/// Panics if `es == 0` or `out_width` is narrower than `k`.
#[must_use]
pub fn k_times_scale(nl: &mut Netlist, k: &Bus, es: u32, out_width: usize) -> Bus {
    assert!(es >= 1, "es must be at least 1");
    assert!(out_width >= k.width(), "output narrower than k");
    if es == 1 {
        // scale = 1: identity.
        return nl.sext(k, out_width);
    }
    // (k << es) − k in out_width bits.
    let shifted = {
        let mut v = vec![CONST0; es as usize];
        v.extend_from_slice(&k.0);
        nl.sext(&Bus(v), out_width)
    };
    let kx = nl.sext(k, out_width);
    let (diff, _) = nl.ripple_sub(&shifted, &kx);
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_netlist::Simulator;

    #[test]
    fn first_zero_all_positions() {
        let mut nl = Netlist::new("t");
        let f = nl.input("f", 3);
        let fz = first_zero_detector(&mut nl, &[f.bit(0), f.bit(1), f.bit(2)]);
        nl.output("sel", &Bus(fz.sel.clone()));
        nl.output("idx", &fz.index);
        nl.output("none", &Bus(vec![fz.none]));
        let mut sim = Simulator::new(&nl);
        for v in 0..8u64 {
            sim.set(&f, v);
            sim.step();
            // flags order: f.bit(0) is group 0 (checked first)
            let flags = [(v) & 1, (v >> 1) & 1, (v >> 2) & 1];
            let first = flags.iter().position(|&b| b == 0);
            if let Some(g) = first {
                assert_eq!(sim.peek_output("sel"), 1 << g, "v={v:03b}");
                assert_eq!(sim.peek_output("idx"), g as u64, "v={v:03b}");
                assert_eq!(sim.peek_output("none"), 0);
            } else {
                assert_eq!(sim.peek_output("sel"), 0);
                assert_eq!(sim.peek_output("none"), 1);
            }
        }
    }

    #[test]
    fn first_zero_single_flag() {
        let mut nl = Netlist::new("t");
        let f = nl.input("f", 1);
        let fz = first_zero_detector(&mut nl, &[f.bit(0)]);
        assert_eq!(fz.index.width(), 1);
        nl.output("none", &Bus(vec![fz.none]));
        nl.output("idx", &fz.index);
        let mut sim = Simulator::new(&nl);
        sim.set(&f, 0);
        sim.step();
        assert_eq!(sim.peek_output("none"), 0);
        sim.set(&f, 1);
        sim.step();
        assert_eq!(sim.peek_output("none"), 1);
    }

    #[test]
    fn k_times_3_matches_reference() {
        // es=2 → ×3, the exact Fig. 5b unit for MERSIT(8,2).
        let mut nl = Netlist::new("t");
        let k = nl.input("k", 3);
        let r = k_times_scale(&mut nl, &k, 2, 5);
        nl.output("r", &r);
        let mut sim = Simulator::new(&nl);
        for kv in -4i64..4 {
            sim.set(&k, (kv as u64) & 0b111);
            sim.step();
            assert_eq!(sim.get_signed(&r), 3 * kv, "k={kv}");
        }
    }

    #[test]
    fn k_times_7_and_identity() {
        let mut nl = Netlist::new("t");
        let k = nl.input("k", 2);
        let r7 = k_times_scale(&mut nl, &k, 3, 5);
        let r1 = k_times_scale(&mut nl, &k, 1, 5);
        nl.output("r7", &r7);
        nl.output("r1", &r1);
        let mut sim = Simulator::new(&nl);
        for kv in -2i64..2 {
            sim.set(&k, (kv as u64) & 0b11);
            sim.step();
            assert_eq!(sim.get_signed(&r7), 7 * kv, "k={kv}");
            assert_eq!(sim.get_signed(&r1), kv, "k={kv}");
        }
    }
}
