//! # mersit-hw — gate-level MAC units for FP8 / Posit8 / MERSIT8
//!
//! This crate synthesizes (to the `mersit-netlist` cell library) the MAC
//! architecture of the paper's Fig. 2 for each data format:
//!
//! * [`dec_mersit::MersitDecoder`] — the merged (grouped) decoding scheme of
//!   §3.3 / Fig. 5, including the first-zero detector and `k×(2^es−1)` unit;
//! * [`dec_posit::PositDecoder`] — 1-bit-resolution regime decoding
//!   (bitwise normalize → LZC → full barrel shift);
//! * [`dec_fp8::Fp8Decoder`] — exponent biasing plus subnormal
//!   normalization;
//! * [`mult::build_multiplier`] — decoder pair + signed exponent adder +
//!   unsigned fraction multiplier (the Table 3 unit);
//! * [`mac::MacUnit`] — multiplier + aligner + Kulisch accumulator
//!   (the Fig. 7 unit);
//! * [`cost`] — workload-driven area/power evaluation at 100 MHz.
//!
//! Every gate-level block is cross-verified against the bit-exact
//! `mersit-core` golden models over the full 8-bit code space.
//!
//! ## Quick example
//!
//! ```
//! use mersit_core::Mersit;
//! use mersit_hw::{dec_mersit::MersitDecoder, mac::MacUnit};
//! use mersit_netlist::Simulator;
//!
//! let fmt = Mersit::new(8, 2)?;
//! let mac = MacUnit::build(&MersitDecoder::new(fmt.clone()));
//! let mut sim = Simulator::new(&mac.netlist);
//! sim.reset();
//! // accumulate 2.0 × 1.5
//! use mersit_core::Format;
//! sim.set(&mac.w_code, u64::from(fmt.encode(2.0)));
//! sim.set(&mac.a_code, u64::from(fmt.encode(1.5)));
//! sim.set(&mac.clear, 0);
//! sim.clock();
//! assert_eq!(mac.acc_value(sim.get_signed(&mac.acc)), 3.0);
//! # Ok::<(), mersit_core::InvalidFormatError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::many_single_char_names,
    clippy::unreadable_literal,
    clippy::match_same_arms,
    clippy::missing_panics_doc,
    clippy::unusual_byte_groupings,
    clippy::too_many_lines,
    clippy::cast_lossless,
    clippy::similar_names
)]

pub mod cost;
pub mod dec_fp8;
pub mod dec_mersit;
pub mod dec_posit;
pub mod engine;
pub mod golden;
pub mod lzd;
pub mod mac;
pub mod mult;
pub mod ports;
pub mod requant;

pub use cost::{
    assignment_cost, encode_stream, gaussian_samples, mac_cost, mac_cost_with_margin,
    multiplier_cost, AssignmentCost, BlockCost, MacBreakdown, MacCostCache, MultiplierBreakdown,
};
pub use dec_fp8::Fp8Decoder;
pub use dec_mersit::MersitDecoder;
pub use dec_posit::PositDecoder;
pub use engine::DotEngine;
pub use golden::GoldenMac;
pub use mac::MacUnit;
pub use ports::{standalone_decoder, Decoder, DecoderOutputs};
pub use requant::MersitRequantizer;

use mersit_core::{parse_format, InvalidFormatError};

/// Builds the decoder generator for a format by name
/// (`"FP(8,4)"`, `"Posit(8,1)"`, `"MERSIT(8,2)"`, …).
///
/// # Errors
///
/// Returns an error for unknown names, non-8-bit formats, or formats
/// without a hardware decoder (INT8 needs none).
pub fn decoder_for(name: &str) -> Result<Box<dyn Decoder>, InvalidFormatError> {
    // Parse through the registry for uniform validation, then rebuild the
    // concrete format.
    let fmt = parse_format(name)?;
    let n = fmt.name();
    if let Some(args) = n.strip_prefix("MERSIT(") {
        let (b, e) = split_args(args)?;
        return Ok(Box::new(MersitDecoder::new(mersit_core::Mersit::new(
            b, e,
        )?)));
    }
    if let Some(args) = n.strip_prefix("Posit(") {
        let (b, e) = split_args(args)?;
        return Ok(Box::new(PositDecoder::new(mersit_core::Posit::new(b, e)?)));
    }
    if let Some(args) = n.strip_prefix("FP(") {
        let (b, e) = split_args(args)?;
        return Ok(Box::new(Fp8Decoder::new(mersit_core::Fp8::with_bits(
            b, e,
        )?)));
    }
    Err(InvalidFormatError::new(format!(
        "no hardware decoder for `{n}`"
    )))
}

fn split_args(args: &str) -> Result<(u32, u32), InvalidFormatError> {
    let args = args.trim_end_matches(')');
    let mut it = args.split(',');
    let b = it
        .next()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| InvalidFormatError::new("bad format args"))?;
    let e = it
        .next()
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| InvalidFormatError::new("bad format args"))?;
    Ok((b, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_for_all_hardware_formats() {
        for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)", "MERSIT(8,3)"] {
            let d = decoder_for(name).unwrap();
            assert_eq!(d.name(), name);
        }
    }

    #[test]
    fn decoder_for_rejects_unknown() {
        assert!(decoder_for("INT8").is_err());
        assert!(decoder_for("GHOST(8,1)").is_err());
    }
}
