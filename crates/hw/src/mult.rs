//! The format multiplier of Fig. 2: two decoders, a signed exponent adder
//! and an unsigned fraction multiplier (plus the sign XOR).
//!
//! Table 3 of the paper breaks a multiplier down into exactly these three
//! components; [`build_multiplier`] tags each with its own scope so the
//! area/power reports can reproduce that breakdown.

use crate::ports::{Decoder, DecoderOutputs};
use mersit_core::MacParams;
use mersit_netlist::{Bus, NetId, Netlist};

/// Output ports of a format multiplier.
#[derive(Debug, Clone)]
pub struct MultiplierPorts {
    /// Sign of the product.
    pub sign: NetId,
    /// Sum of effective exponents, `P+1`-bit signed.
    pub exp_sum: Bus,
    /// Unsigned significand product, `2M` bits.
    pub prod: Bus,
    /// Product is exactly zero (either operand zero or special-gated).
    pub is_zero: NetId,
    /// Either operand was ±∞ / NaN.
    pub is_special: NetId,
    /// Decoder outputs of the weight operand.
    pub dec_w: DecoderOutputs,
    /// Decoder outputs of the activation operand.
    pub dec_a: DecoderOutputs,
}

/// Scope names used inside the multiplier (for report queries).
pub mod scopes {
    /// The decoder pair.
    pub const DECODER: &str = "decoder";
    /// The signed exponent adder.
    pub const EXP_ADDER: &str = "exp_adder";
    /// The unsigned fraction multiplier.
    pub const FRAC_MUL: &str = "frac_mul";
    /// The sign XOR.
    pub const SIGN: &str = "sign";
    /// The whole multiplier.
    pub const MULTIPLIER: &str = "multiplier";
}

/// Instantiates a format multiplier inside the caller's current scope,
/// consuming two 8-bit code buses (`w` = weight, `a` = activation).
pub fn build_multiplier(
    nl: &mut Netlist,
    dec: &dyn Decoder,
    w_code: &Bus,
    a_code: &Bus,
) -> MultiplierPorts {
    nl.scoped(scopes::MULTIPLIER, |nl| {
        let (dec_w, dec_a) = nl.scoped(scopes::DECODER, |nl| {
            let w = nl.scoped("w", |nl| dec.build(nl, w_code));
            let a = nl.scoped("a", |nl| dec.build(nl, a_code));
            (w, a)
        });
        let sign = nl.scoped(scopes::SIGN, |nl| nl.xor2(dec_w.sign, dec_a.sign));
        let exp_sum = nl.scoped(scopes::EXP_ADDER, |nl| {
            nl.signed_add(&dec_w.exp_eff, &dec_a.exp_eff)
        });
        let prod = nl.scoped(scopes::FRAC_MUL, |nl| nl.array_mul(&dec_w.sig, &dec_a.sig));
        let is_zero = nl.or2(dec_w.is_zero, dec_a.is_zero);
        let is_special = nl.or2(dec_w.is_special, dec_a.is_special);
        MultiplierPorts {
            sign,
            exp_sum,
            prod,
            is_zero,
            is_special,
            dec_w,
            dec_a,
        }
    })
}

/// Builds a standalone multiplier netlist (the Table 3 unit), with output
/// ports for functional checking.
pub fn standalone_multiplier(dec: &dyn Decoder) -> (Netlist, Bus, Bus, MultiplierPorts) {
    let mut nl = Netlist::new(format!("mult_{}", crate::ports::sanitize(&dec.name())));
    let w = nl.input("w", 8);
    let a = nl.input("a", 8);
    let ports = build_multiplier(&mut nl, dec, &w, &a);
    nl.output("sign", &Bus(vec![ports.sign]));
    nl.output("exp_sum", &ports.exp_sum);
    nl.output("prod", &ports.prod);
    nl.output("is_zero", &Bus(vec![ports.is_zero]));
    (nl, w, a, ports)
}

/// Checks the structural widths of a multiplier against [`MacParams`].
#[must_use]
pub fn multiplier_widths(params: &MacParams) -> (usize, usize) {
    ((params.p + 1) as usize, (2 * params.m) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dec_fp8::Fp8Decoder;
    use crate::dec_mersit::MersitDecoder;
    use crate::dec_posit::PositDecoder;
    use mersit_core::{Format, Fp8, Mersit, Posit, ValueClass};
    use mersit_netlist::Simulator;

    // `exact_sig`: golden fields match hardware significands bit-exactly
    // (true for Posit/MERSIT; FP8 hardware normalizes subnormals, so for
    // FP8 the product is checked by value only).
    fn check_multiplier(dec: &dyn Decoder, fmt: &dyn Format, exact_sig: bool) {
        let (nl, w, a, ports) = standalone_multiplier(dec);
        let params = dec.params();
        let (exp_w, prod_w) = multiplier_widths(&params);
        assert_eq!(ports.exp_sum.width(), exp_w);
        assert_eq!(ports.prod.width(), prod_w);
        let mut sim = Simulator::new(&nl);
        let m = params.m as i64;
        // Deterministic subset of the 65536 pairs: stride the space.
        for wc in (0..256u16).step_by(7) {
            for ac in (0..256u16).step_by(11) {
                sim.set(&w, u64::from(wc));
                sim.set(&a, u64::from(ac));
                sim.step();
                let wf = fmt.classify(wc);
                let af = fmt.classify(ac);
                if wf != ValueClass::Finite || af != ValueClass::Finite {
                    if wf == ValueClass::Zero || af == ValueClass::Zero {
                        assert_eq!(sim.peek_output("is_zero"), 1);
                    }
                    // Specials gate the significand to zero.
                    if wf != ValueClass::Finite {
                        continue;
                    }
                    continue;
                }
                let dw = fmt.fields(wc).unwrap();
                let da = fmt.fields(ac).unwrap();
                let hw_prod = sim.peek_output("prod");
                let hw_exp = sim.get_signed(&ports.exp_sum);
                let hw_sign = sim.peek_output("sign");
                if exact_sig {
                    assert_eq!(hw_prod, u64::from(dw.sig) * u64::from(da.sig));
                }
                assert_eq!(hw_sign, u64::from(dw.sign ^ da.sign));
                // Exponent check by value (FP8 normalizes subnormals).
                let hw_val = hw_prod as f64 * 2f64.powi((hw_exp - 2 * (m - 1)) as i32);
                let expect = dw.magnitude() * da.magnitude();
                assert!(
                    (hw_val - expect).abs() <= expect.abs() * 1e-12,
                    "{}: {wc:#x}×{ac:#x}: hw {hw_val} vs {expect}",
                    fmt.name()
                );
            }
        }
    }

    #[test]
    fn mersit82_multiplier_correct() {
        let f = Mersit::new(8, 2).unwrap();
        check_multiplier(&MersitDecoder::new(f.clone()), &f, true);
    }

    #[test]
    fn posit81_multiplier_correct() {
        let f = Posit::new(8, 1).unwrap();
        check_multiplier(&PositDecoder::new(f.clone()), &f, true);
    }

    #[test]
    fn fp84_multiplier_correct() {
        let f = Fp8::new(4).unwrap();
        check_multiplier(&Fp8Decoder::new(f.clone()), &f, false);
    }

    #[test]
    fn zero_operand_zeroes_product() {
        let f = Mersit::new(8, 2).unwrap();
        let dec = MersitDecoder::new(f.clone());
        let (nl, w, a, _) = standalone_multiplier(&dec);
        let mut sim = Simulator::new(&nl);
        sim.set(&w, u64::from(f.encode(0.0)));
        sim.set(&a, u64::from(f.encode(1.5)));
        sim.step();
        assert_eq!(sim.peek_output("prod"), 0);
        assert_eq!(sim.peek_output("is_zero"), 1);
    }
}
