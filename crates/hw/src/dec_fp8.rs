//! The FP8 hardware decoder — exponent biasing plus subnormal
//! normalization.
//!
//! As the paper notes (§4.3), the FP decoder "occupies a non-negligible
//! area … as it deals with subnormal numbers and exponent biasing". The
//! `P = 5` exponent width of FP(8,4) in Fig. 2 implies subnormals are
//! *normalized* by the decoder (effective exponents reach −9, below the
//! subnormal field exponent of −6), so this decoder includes a fraction
//! LZC, a normalization shifter and the exponent adjust path.

use crate::ports::{Decoder, DecoderOutputs};
use mersit_core::{Format, Fp8, MacParams};
use mersit_netlist::{Bus, Netlist};

/// Generates FP(8,E) decoders.
#[derive(Debug, Clone)]
pub struct Fp8Decoder {
    fmt: Fp8,
}

impl Fp8Decoder {
    /// Wraps an FP8 format (must be 8 bits wide).
    ///
    /// # Panics
    ///
    /// Panics if the format is not 8 bits.
    #[must_use]
    pub fn new(fmt: Fp8) -> Self {
        assert_eq!(fmt.bits(), 8, "hardware decoders are 8-bit");
        Self { fmt }
    }

    /// The wrapped format.
    #[must_use]
    pub fn format(&self) -> &Fp8 {
        &self.fmt
    }
}

impl Decoder for Fp8Decoder {
    fn name(&self) -> String {
        self.fmt.name()
    }

    fn params(&self) -> MacParams {
        MacParams::of(&self.fmt)
    }

    fn build(&self, nl: &mut Netlist, code: &Bus) -> DecoderOutputs {
        assert_eq!(code.width(), 8, "code bus must be 8 bits");
        let mb = self.fmt.frac_bits() as usize; // fraction field width
        let m = self.params().m as usize; // = mb + 1
        let p = self.params().p as usize;
        let bias = i64::from(self.fmt.bias());

        let sign = code.bit(7);
        let f = code.slice(0, mb);
        let e = code.slice(mb, 7);

        // Specials.
        let is_special = nl.scoped("special", |nl| nl.is_ones(&e));
        let is_e0 = nl.scoped("special", |nl| nl.is_zero(&e));
        let f_zero = nl.scoped("special", |nl| nl.is_zero(&f));
        let is_zero = nl.and2(is_e0, f_zero);
        let nsp = nl.not(is_special);
        let nz = nl.not(is_zero);
        let finite = nl.and2(nsp, nz);

        // Normal path: exp_eff = e − bias ; sig = {1, f}.
        let (exp_norm, sig_norm) = nl.scoped("bias", |nl| {
            let ez = nl.zext(&e, p);
            let negb = nl.lit(p, (-bias as u64) & ((1 << p) - 1));
            let (exp_norm, _) = nl.ripple_add(&ez, &negb, None);
            let mut sig = f.0.clone();
            sig.push(mersit_netlist::CONST1);
            (exp_norm, Bus(sig))
        });

        // Subnormal path: normalize — lz = LZC(f), sig = f << (lz+1),
        // exp_eff = −bias − lz.
        let (exp_sub, sig_sub) = nl.scoped("subnormal", |nl| {
            let lz = nl.leading_zero_count(&f);
            let fz4 = nl.zext(&f, m);
            let sh = nl.increment(&lz);
            let sig_sub = nl.barrel_shl(&fz4, &sh);
            let negb = nl.lit(p, (-bias as u64) & ((1 << p) - 1));
            let lzp = nl.zext(&lz, p);
            let (exp_sub, _) = nl.ripple_sub(&negb, &lzp);
            (exp_sub, sig_sub)
        });

        // Select per the exponent-field-zero flag, then gate by finiteness.
        let exp_eff = nl.mux2_bus(is_e0, &exp_sub, &exp_norm);
        let sig_pre = nl.mux2_bus(is_e0, &sig_sub, &sig_norm);
        let sig = Bus(sig_pre.iter().map(|&b| nl.and2(b, finite)).collect());

        DecoderOutputs {
            sign,
            exp_eff,
            sig,
            is_zero,
            is_special,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::standalone_decoder;
    use mersit_core::ValueClass;
    use mersit_netlist::Simulator;

    fn check_against_golden(e: u32) {
        let fmt = Fp8::new(e).unwrap();
        let dec = Fp8Decoder::new(fmt.clone());
        let (nl, code, out) = standalone_decoder(&dec);
        let mut sim = Simulator::new(&nl);
        let m = dec.params().m as i64;
        for c in 0..256u16 {
            sim.set(&code, u64::from(c));
            sim.step();
            match fmt.classify(c) {
                ValueClass::Finite => {
                    let d = fmt.fields(c).unwrap();
                    // The hardware normalizes subnormals; compare by value,
                    // which is invariant under normalization.
                    let hw_exp = sim.get_signed(&out.exp_eff);
                    let hw_sig = sim.get(&out.sig) as i64;
                    let hw_mag = hw_sig as f64 * 2f64.powi((hw_exp - (m - 1)) as i32);
                    assert!(
                        (hw_mag - d.magnitude()).abs() < 1e-15,
                        "FP(8,{e}) code {c:#010b}: hw {hw_mag} vs golden {}",
                        d.magnitude()
                    );
                    // Hidden bit must be set (normalized) for finite values.
                    assert_eq!(hw_sig >> (m - 1), 1, "code {c:#010b} not normalized");
                    assert_eq!(sim.peek_output("sign"), u64::from(d.sign));
                    assert_eq!(sim.peek_output("is_zero"), 0);
                    assert_eq!(sim.peek_output("is_special"), 0);
                }
                ValueClass::Zero => {
                    assert_eq!(sim.peek_output("is_zero"), 1, "code {c:#010b}");
                    assert_eq!(sim.get(&out.sig), 0);
                }
                ValueClass::Infinite | ValueClass::Nan => {
                    assert_eq!(sim.peek_output("is_special"), 1, "code {c:#010b}");
                }
            }
        }
    }

    #[test]
    fn fp84_decoder_matches_golden_on_all_codes() {
        check_against_golden(4);
    }

    #[test]
    fn fp83_decoder_matches_golden_on_all_codes() {
        check_against_golden(3);
    }

    #[test]
    fn fp85_decoder_matches_golden_on_all_codes() {
        check_against_golden(5);
    }

    #[test]
    fn fp82_decoder_matches_golden_on_all_codes() {
        check_against_golden(2);
    }

    #[test]
    fn subnormal_normalization_reaches_emin() {
        // FP(8,4) min subnormal 2^-9 must decode to exp_eff −9, sig 1000.
        let fmt = Fp8::new(4).unwrap();
        let dec = Fp8Decoder::new(fmt);
        let (nl, code, out) = standalone_decoder(&dec);
        let mut sim = Simulator::new(&nl);
        sim.set(&code, 0b0_0000_001);
        sim.step();
        assert_eq!(sim.get_signed(&out.exp_eff), -9);
        assert_eq!(sim.get(&out.sig), 0b1000);
    }
}
