//! The MERSIT hardware decoder — the merged (grouped) decoding scheme of
//! §3.3 / Fig. 5.
//!
//! Decoding proceeds at `es`-bit resolution:
//!
//! 1. each exponent candidate (EC) is AND-reduced (`es`-input AND gates),
//! 2. a small first-zero detector over the `G` AND flags locates the
//!    exponent EC (the "3-bit LZD unit" for MERSIT(8,2)),
//! 3. a coarse dynamic shifter (granularity `es` bits, so only
//!    `ceil(log2 G)` mux stages) left-aligns the exponent and fraction,
//! 4. the regime is recovered with one XNOR row (`k = ks ? g : ~g`), and
//! 5. the `k × (2^es − 1)` unit plus a small adder produce the effective
//!    exponent.
//!
//! The win over Posit (1-bit-resolution run detection and shifting) is the
//! coarser granularity of steps 2–3, which is exactly the paper's argument.

use crate::lzd::{first_zero_detector, k_times_scale};
use crate::ports::{Decoder, DecoderOutputs};
use mersit_core::{Format, MacParams, Mersit};
use mersit_netlist::{Bus, Netlist, CONST0};

/// Generates MERSIT(8,E) decoders.
#[derive(Debug, Clone)]
pub struct MersitDecoder {
    fmt: Mersit,
}

impl MersitDecoder {
    /// Wraps a MERSIT format (must be 8 bits wide).
    ///
    /// # Panics
    ///
    /// Panics if the format is not 8 bits.
    #[must_use]
    pub fn new(fmt: Mersit) -> Self {
        assert_eq!(fmt.bits(), 8, "hardware decoders are 8-bit");
        Self { fmt }
    }

    /// The wrapped format.
    #[must_use]
    pub fn format(&self) -> &Mersit {
        &self.fmt
    }
}

impl Decoder for MersitDecoder {
    fn name(&self) -> String {
        self.fmt.name()
    }

    fn params(&self) -> MacParams {
        MacParams::of(&self.fmt)
    }

    fn build(&self, nl: &mut Netlist, code: &Bus) -> DecoderOutputs {
        assert_eq!(code.width(), 8, "code bus must be 8 bits");
        let es = self.fmt.es() as usize;
        let groups = self.fmt.groups() as usize;
        let body_w = 6usize; // bits − 2
        let p = self.params().p as usize;
        let m = self.params().m as usize;
        let max_fb = self.fmt.max_frac_bits() as usize;

        let sign = code.bit(7);
        let ks = code.bit(6);
        let body = code.slice(0, body_w);

        // 1. AND-reduce each EC (group 0 = most significant).
        let flags: Vec<_> = (0..groups)
            .map(|g| {
                let hi = body_w - g * es;
                let ec = body.slice(hi - es, hi);
                nl.scoped(format!("ec_and{g}"), |nl| nl.and_reduce(&ec.0))
            })
            .collect();

        // 2. First-zero detection (the 3-bit LZD of Fig. 5b for es=2).
        let fz = nl.scoped("lzd", |nl| first_zero_detector(nl, &flags));
        let finite = nl.not(fz.none);
        let n_ks = nl.not(ks);
        let is_zero = nl.and2(fz.none, n_ks);
        let is_special = nl.and2(fz.none, ks);

        // 3. Coarse dynamic shifter: shift left by g×es bits.
        let shifted = nl.scoped("shifter", |nl| {
            let sh = mul_const_small(nl, &fz.index, es);
            nl.barrel_shl(&body, &sh)
        });
        let exp = shifted.slice(body_w - es, body_w);
        let frac = shifted.slice(0, max_fb);

        // Significand: hidden bit + left-aligned fraction, gated by `finite`.
        let mut sig_bits: Vec<_> = frac.iter().map(|&b| nl.and2(b, finite)).collect();
        sig_bits.push(finite); // hidden bit
        let sig = Bus(sig_bits);
        debug_assert_eq!(sig.width(), m);

        // 4. Regime via the XNOR row: k = ks ? g : ~g (two's complement).
        let k = nl.scoped("regime", |nl| {
            let kw = fz.index.width() + 1;
            let gpad = nl.zext(&fz.index, kw);
            Bus(gpad.iter().map(|&b| nl.xnor2(b, ks)).collect())
        });

        // 5. Effective exponent: k×(2^es−1) + exp.
        let exp_eff = nl.scoped("kmul", |nl| {
            let kxs = k_times_scale(nl, &k, es as u32, p);
            let expz = nl.zext(&exp, p);
            let (sum, _) = nl.ripple_add(&kxs, &expz, None);
            sum
        });

        DecoderOutputs {
            sign,
            exp_eff,
            sig,
            is_zero,
            is_special,
        }
    }
}

/// Multiplies a small unsigned bus by a compile-time constant via shifted
/// adds (used for the `g × es` shift amount).
fn mul_const_small(nl: &mut Netlist, a: &Bus, c: usize) -> Bus {
    assert!(c > 0, "constant must be positive");
    let out_w = a.width() + (usize::BITS - c.leading_zeros()) as usize;
    let mut acc: Option<Bus> = None;
    for i in 0..usize::BITS as usize {
        if (c >> i) & 1 == 0 {
            continue;
        }
        let mut v = vec![CONST0; i];
        v.extend_from_slice(&a.0);
        let term = nl.zext(&Bus(v), out_w);
        acc = Some(match acc {
            None => term,
            Some(prev) => nl.ripple_add(&prev, &term, None).0,
        });
    }
    acc.expect("constant has at least one set bit")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::standalone_decoder;
    use mersit_core::ValueClass;
    use mersit_netlist::Simulator;

    fn check_against_golden(es: u32) {
        let fmt = Mersit::new(8, es).unwrap();
        let dec = MersitDecoder::new(fmt.clone());
        let (nl, code, out) = standalone_decoder(&dec);
        let mut sim = Simulator::new(&nl);
        let m = dec.params().m;
        for c in 0..256u16 {
            sim.set(&code, u64::from(c));
            sim.step();
            let hw_sign = sim.peek_output("sign");
            let hw_exp = sim.get_signed(&out.exp_eff);
            let hw_sig = sim.get(&out.sig);
            let hw_zero = sim.peek_output("is_zero");
            let hw_spec = sim.peek_output("is_special");
            match fmt.classify(c) {
                ValueClass::Finite => {
                    let d = fmt.fields(c).unwrap();
                    assert_eq!(hw_zero, 0, "code {c:#010b}");
                    assert_eq!(hw_spec, 0, "code {c:#010b}");
                    assert_eq!(hw_sign, u64::from(d.sign), "code {c:#010b}");
                    assert_eq!(hw_exp, i64::from(d.exp_eff), "code {c:#010b}");
                    assert_eq!(hw_sig, u64::from(d.sig), "code {c:#010b}");
                    assert_eq!(d.sig_bits, m);
                }
                ValueClass::Zero => {
                    assert_eq!(hw_zero, 1, "code {c:#010b}");
                    assert_eq!(hw_sig, 0, "zero code {c:#010b} must gate sig");
                }
                ValueClass::Infinite => {
                    assert_eq!(hw_spec, 1, "code {c:#010b}");
                }
                ValueClass::Nan => unreachable!("MERSIT has no NaN"),
            }
        }
    }

    #[test]
    fn mersit82_decoder_matches_golden_on_all_codes() {
        check_against_golden(2);
    }

    #[test]
    fn mersit83_decoder_matches_golden_on_all_codes() {
        check_against_golden(3);
    }

    #[test]
    fn mersit81_decoder_matches_golden_on_all_codes() {
        check_against_golden(1);
    }

    #[test]
    fn mul_const_small_reference() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 3);
        let x3 = mul_const_small(&mut nl, &a, 3);
        let x2 = mul_const_small(&mut nl, &a, 2);
        let x5 = mul_const_small(&mut nl, &a, 5);
        nl.output("x3", &x3);
        nl.output("x2", &x2);
        nl.output("x5", &x5);
        let mut sim = Simulator::new(&nl);
        for v in 0..8u64 {
            sim.set(&a, v);
            sim.step();
            assert_eq!(sim.peek_output("x3"), 3 * v);
            assert_eq!(sim.peek_output("x2"), 2 * v);
            assert_eq!(sim.peek_output("x5"), 5 * v);
        }
    }

    #[test]
    fn decoder_is_compact() {
        // The merged scheme should land well under the Posit decoder's cell
        // count; sanity-bound it in absolute terms too.
        let dec = MersitDecoder::new(Mersit::new(8, 2).unwrap());
        let (nl, _, _) = standalone_decoder(&dec);
        assert!(
            nl.gates().len() < 120,
            "MERSIT(8,2) decoder unexpectedly large: {} gates",
            nl.gates().len()
        );
    }
}
