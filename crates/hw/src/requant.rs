//! The MERSIT(8,2) **requantizer**: a gate-level encoder from fixed-point
//! (the Kulisch accumulator domain) back to an 8-bit MERSIT code with
//! round-to-nearest-even.
//!
//! The paper's MAC consumes MERSIT operands; a deployed accelerator must
//! also *produce* them — the accumulator result is renormalized, rounded
//! at the regime-dependent fraction width, and packed into
//! sign/ks/EC fields. This block completes the datapath loop and is
//! verified exhaustively against the software encoder.
//!
//! Pipeline: |mag| → leading-one detect → normalize (barrel shift) →
//! effective exponent `e = lsb_exp + msb_index` → clamp to
//! `[−9, 8]` (minpos / max saturation, matching the software
//! `SaturateToMinPos` policy) → regime-dependent fraction slice + RNE
//! (guard & (sticky | lsb), fb=0 ties round up) → carry into `e` →
//! radix-3 split `e = 3k + exp` (×11 ≫ 5 divider) → field packing.
//!
//! # Harness invariants
//!
//! * **Encoder equivalence.** For every representable `±mag × 2^lsb_exp`
//!   the emitted code equals the software `Format::encode` bit for bit —
//!   verified *exhaustively* (all magnitudes × both signs) across
//!   normal, saturating, and underflowing `lsb_exp` placements by the
//!   tests in this module.
//! * **Rounding semantics.** Round-to-nearest-even on the
//!   regime-dependent fraction width; in the fraction-free outer regime
//!   (`fb = 0`) the tie has no even/odd bit to consult and rounds up,
//!   matching the software encoder and NUMERICS.md §Rounding.
//! * **Saturation, not wraparound.** Overflow (pre- or post-round)
//!   clamps to max-magnitude; magnitudes below minpos clamp to minpos;
//!   a zero magnitude emits the canonical zero pattern with sign 0.
//! * **Place in the datapath.** This block is the gate-level form of the
//!   bit-true executor's *single output rounding*: the Kulisch
//!   accumulator (exact, wide) is renormalized and rounded exactly once
//!   on the way back to 8-bit codes.

use mersit_netlist::{Bus, NetId, Netlist, CONST0, CONST1};

/// A synthesized MERSIT(8,2) requantizer.
#[derive(Debug)]
pub struct MersitRequantizer {
    /// The gate-level design.
    pub netlist: Netlist,
    /// Unsigned magnitude input (`mag_bits` wide).
    pub mag: Bus,
    /// Sign input (1 bit).
    pub sign: Bus,
    /// 8-bit MERSIT code output.
    pub code: Bus,
    /// Width of the magnitude input.
    pub mag_bits: usize,
    /// Exponent of the magnitude LSB: input value = mag × 2^lsb_exp.
    pub lsb_exp: i32,
}

const E_MIN: i64 = -9;
const E_MAX: i64 = 8;

impl MersitRequantizer {
    /// Builds a requantizer for `mag_bits`-wide magnitudes with LSB weight
    /// `2^lsb_exp`.
    ///
    /// # Panics
    ///
    /// Panics unless `8 <= mag_bits <= 48` and the representable exponent
    /// range `lsb_exp ..= lsb_exp + mag_bits − 1` fits the 8-bit internal
    /// exponent arithmetic.
    #[must_use]
    pub fn build(mag_bits: usize, lsb_exp: i32) -> Self {
        assert!((8..=48).contains(&mag_bits), "mag_bits out of range");
        assert!(
            lsb_exp >= -100 && lsb_exp + mag_bits as i32 <= 100,
            "lsb_exp {lsb_exp} with {mag_bits} magnitude bits exceeds the \
             8-bit exponent datapath"
        );
        let mut nl = Netlist::new(format!("requant_mersit82_{mag_bits}"));
        let mag = nl.input("mag", mag_bits);
        let sign = nl.input("sign", 1);

        // --- 1. Leading-one detection + normalization -------------------
        let (sel, none) = nl.scoped("lod", |nl| nl.priority_from_msb(&mag));
        let is_zero = none;
        // lz = leading zero count; shift = lz + 1 drops the hidden MSB.
        let (shifted, msb_idx) = nl.scoped("normalize", |nl| {
            let lz = nl.leading_zero_count(&mag);
            let sh_full = nl.increment(&lz);
            let shw = usize::BITS as usize - mag_bits.leading_zeros() as usize;
            let sh = sh_full.slice(0, shw.min(sh_full.width()));
            let shifted = nl.barrel_shl(&mag, &sh);
            // msb index (from LSB) = mag_bits − 1 − lz, via one-hot sum.
            let iw = shw;
            let mut idx = nl.lit(iw, 0);
            for (s, &hot) in sel.iter().enumerate() {
                // `sel[s]` is MSB-first: index = mag_bits − 1 − s.
                let val = (mag_bits - 1 - s) as u64;
                let cand = nl.lit(iw, val);
                let gated = Bus(cand.iter().map(|&b| nl.and2(b, hot)).collect::<Vec<_>>());
                idx = Bus(idx
                    .iter()
                    .zip(gated.iter())
                    .map(|(&a, &b)| nl.or2(a, b))
                    .collect::<Vec<_>>());
            }
            (shifted, idx)
        });

        // --- 2. Effective exponent with range clamps --------------------
        // e = lsb_exp + msb_idx, computed in 8-bit signed arithmetic.
        let ew = 8usize;
        let (e_pre, under, over) = nl.scoped("exponent", |nl| {
            let idx8 = nl.zext(&msb_idx, ew);
            let lsb8 = nl.lit(ew, (lsb_exp as i64 as u64) & 0xFF);
            let (e, _) = nl.ripple_add(&idx8, &lsb8, None);
            // under = e < E_MIN ; over = e > E_MAX (signed comparisons via
            // subtraction).
            let emin = nl.lit(ew, (E_MIN as u64) & 0xFF);
            let emax = nl.lit(ew, (E_MAX as u64) & 0xFF);
            let under = signed_lt(nl, &e, &emin);
            let over = signed_lt(nl, &emax, &e);
            (e, under, over)
        });

        // --- 3. Regime-dependent fraction slice + RNE --------------------
        // g from e (pre-round): g0 ⇔ e ∈ [−3,2], g1 ⇔ e ∈ [−6,−4] ∪ [3,5].
        let (g0, g1) = nl.scoped("gsel", |nl| {
            let in_range = |nl: &mut Netlist, e: &Bus, lo: i64, hi: i64| {
                let lo_l = nl.lit(ew, (lo as u64) & 0xFF);
                let hi_l = nl.lit(ew, (hi as u64) & 0xFF);
                let ge_lo = signed_lt(nl, e, &lo_l);
                let ge_lo = nl.not(ge_lo);
                let le_hi = signed_lt(nl, &hi_l, e);
                let le_hi = nl.not(le_hi);
                nl.and2(ge_lo, le_hi)
            };
            let g0 = in_range(nl, &e_pre, -3, 2);
            let lo_band = in_range(nl, &e_pre, -6, -4);
            let hi_band = in_range(nl, &e_pre, 3, 5);
            let g1 = nl.or2(lo_band, hi_band);
            (g0, g1)
        });

        // Mantissa stream: top 6 bits of the normalized value + sticky rest.
        let a = shifted.width();
        let m_top = shifted.slice(a - 6, a); // m_top.bit(5) is the first frac bit
        let rest = shifted.slice(0, a - 6);
        let sticky_rest = nl.or_reduce(&rest.0);

        let (frac_after, carry) = nl.scoped("round", |nl| {
            let m5 = m_top.bit(5);
            let m4 = m_top.bit(4);
            let m3 = m_top.bit(3);
            let m2 = m_top.bit(2);
            let m1 = m_top.bit(1);
            let m0 = m_top.bit(0);
            // guard/sticky/lsb per g (two-level mux on g0/g1).
            let s_low = nl.or2(m0, sticky_rest); // below g0 guard
            let s_mid0 = nl.or_reduce(&[m2, m1, m0, sticky_rest]); // below g1 guard
            let s_hi0 = nl.or_reduce(&[m4, m3, m2, m1, m0, sticky_rest]); // below g2 guard
            let guard = {
                let g12 = nl.mux2(g1, m3, m5); // g1 → m3 ; g2 → m5
                nl.mux2(g0, m1, g12)
            };
            let sticky = {
                let s12 = nl.mux2(g1, s_mid0, s_hi0);
                nl.mux2(g0, s_low, s12)
            };
            let lsb = {
                let l12 = nl.mux2(g1, m4, CONST1); // g2: fb=0 → ties round up
                nl.mux2(g0, m2, l12)
            };
            let st_or_lsb = nl.or2(sticky, lsb);
            let round_up = nl.and2(guard, st_or_lsb);
            // Fraction value (4 bits, LSB-aligned) per g.
            let zero4 = nl.lit(4, 0);
            let f4 = Bus(vec![m2, m3, m4, m5]);
            let f2 = Bus(vec![m4, m5, CONST0, CONST0]);
            let f12 = nl.mux2_bus(g1, &f2, &zero4);
            let frac = nl.mux2_bus(g0, &f4, &f12);
            // Add the rounding bit.
            let inc = nl.increment(&frac); // 5 bits
            let frac_r = nl.mux2_bus(round_up, &inc.slice(0, 4), &frac);
            let bit_out = nl.mux2(round_up, inc.bit(4), CONST0);
            // Carry beyond the regime's own fraction width.
            let c_g0 = bit_out; // overflow past 4 bits
            let c_g1 = frac_r.bit(2); // past 2 bits
            let c_g2 = frac_r.bit(0); // fb = 0: any increment carries
            let c12 = nl.mux2(g1, c_g1, c_g2);
            let c = nl.mux2(g0, c_g0, c12);
            // After a carry the fraction is zero.
            let nc = nl.not(c);
            let frac_after = Bus(frac_r.iter().map(|&b| nl.and2(b, nc)).collect::<Vec<_>>());
            (frac_after, c)
        });

        // --- 4. Final exponent, radix-3 split, saturation ----------------
        let (body, over_post) = nl.scoped("pack", |nl| {
            let cb = nl.zext(&Bus(vec![carry]), ew);
            let (e_fin, _) = nl.ripple_add(&e_pre, &cb, None);
            let emax = nl.lit(ew, (E_MAX as u64) & 0xFF);
            let over_post = signed_lt(nl, &emax, &e_fin);
            // u = e_fin + 9 ∈ [0, 17] (5 bits); q = (u × 11) >> 5; r = u − 3q.
            let nine = nl.lit(ew, 9);
            let (u_w, _) = nl.ripple_add(&e_fin, &nine, None);
            let u = u_w.slice(0, 5);
            let q = {
                // u×11 = u + (u<<1) + (u<<3), 9 bits.
                let u9 = nl.zext(&u, 9);
                let u2 = shl_const(nl, &u, 1, 9);
                let u8 = shl_const(nl, &u, 3, 9);
                let (t, _) = nl.ripple_add(&u9, &u2, None);
                let (x11, _) = nl.ripple_add(&t, &u8, None);
                x11.slice(5, 8) // >> 5, 3 bits (q ≤ 5)
            };
            let r = {
                // r = u − 3q (2 bits).
                let q5 = nl.zext(&q, 5);
                let q2 = shl_const(nl, &q, 1, 5);
                let (q3, _) = nl.ripple_add(&q5, &q2, None);
                let (diff, _) = nl.ripple_sub(&u.slice(0, 5), &q3);
                diff.slice(0, 2)
            };
            // ks = q >= 3 ; g one-hot from q.
            let q_eq = |nl: &mut Netlist, v: u64| -> NetId { nl.eq_const(&q, v) };
            let q1 = q_eq(nl, 1);
            let q2b = q_eq(nl, 2);
            let q3b = q_eq(nl, 3);
            let q4 = q_eq(nl, 4);
            let q5b = q_eq(nl, 5);
            let ks = nl.or_reduce(&[q3b, q4, q5b]);
            // g: 0 ⇔ q∈{2,3}, 1 ⇔ q∈{1,4}, 2 ⇔ q∈{0,5} (the g2 case is
            // the mux default, so q=0 needs no explicit term).
            let g0f = nl.or2(q2b, q3b);
            let g1f = nl.or2(q1, q4);
            // Candidate bodies (b5..b0, stored LSB-first):
            // g0: [frac0..frac3, r0, r1]
            // g1: [frac0, frac1, r0, r1, 1, 1]
            // g2: [r0, r1, 1, 1, 1, 1]
            let b_g0 = Bus(vec![
                frac_after.bit(0),
                frac_after.bit(1),
                frac_after.bit(2),
                frac_after.bit(3),
                r.bit(0),
                r.bit(1),
            ]);
            let b_g1 = Bus(vec![
                frac_after.bit(0),
                frac_after.bit(1),
                r.bit(0),
                r.bit(1),
                CONST1,
                CONST1,
            ]);
            let b_g2 = Bus(vec![r.bit(0), r.bit(1), CONST1, CONST1, CONST1, CONST1]);
            let b12 = nl.mux2_bus(g1f, &b_g1, &b_g2);
            let b = nl.mux2_bus(g0f, &b_g0, &b12);
            let body = b.concat(&Bus(vec![ks]));
            (body, over_post)
        });

        // --- 5. Specials: zero / minpos / max ----------------------------
        let out_mag = nl.scoped("specials", |nl| {
            let zero_pat = nl.lit(7, 0b0111111);
            let minpos_pat = nl.lit(7, 0b0111100);
            let max_pat = nl.lit(7, 0b1111110);
            let sat = nl.or2(over, over_post);
            let v = nl.mux2_bus(sat, &max_pat, &body);
            let v = nl.mux2_bus(under, &minpos_pat, &v);
            nl.mux2_bus(is_zero, &zero_pat, &v)
        });
        // Sign bit (zero keeps sign 0 like the software encoder).
        let nz = nl.not(is_zero);
        let sbit = nl.and2(sign.bit(0), nz);
        let code = out_mag.concat(&Bus(vec![sbit]));
        nl.output("code", &code);
        Self {
            netlist: nl,
            mag,
            sign,
            code,
            mag_bits,
            lsb_exp,
        }
    }
}

/// `a < b` for equal-width two's-complement buses.
fn signed_lt(nl: &mut Netlist, a: &Bus, b: &Bus) -> NetId {
    // a − b; negative iff (sign bits and carry pattern) → use widened sub.
    let w = a.width() + 1;
    let ax = nl.sext(a, w);
    let bx = nl.sext(b, w);
    let (diff, _) = nl.ripple_sub(&ax, &bx);
    diff.msb()
}

/// `a << k`, zero-filled, `out_w` wide.
fn shl_const(nl: &mut Netlist, a: &Bus, k: usize, out_w: usize) -> Bus {
    let mut v = vec![CONST0; k];
    v.extend_from_slice(&a.0);
    nl.zext(&Bus(v), out_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mersit_core::{Format, Mersit};
    use mersit_netlist::Simulator;

    fn exhaustive_check(mag_bits: usize, lsb_exp: i32) {
        let fmt = Mersit::new(8, 2).unwrap();
        let rq = MersitRequantizer::build(mag_bits, lsb_exp);
        let mut sim = Simulator::new(&rq.netlist);
        let scale = 2f64.powi(lsb_exp);
        for mag in 0..(1u64 << mag_bits) {
            for sign in [0u64, 1] {
                let x = mag as f64 * scale * if sign == 1 { -1.0 } else { 1.0 };
                let expect = fmt.encode(x);
                sim.set(&rq.mag, mag);
                sim.set(&rq.sign, sign);
                sim.step();
                let got = sim.peek_output("code") as u16;
                assert_eq!(
                    got, expect,
                    "mag={mag} sign={sign} lsb=2^{lsb_exp}: got {got:#010b}, want {expect:#010b} (x={x})"
                );
            }
        }
    }

    #[test]
    fn exhaustive_mid_range() {
        // e spans −8..5: normal regimes plus rounding boundaries.
        exhaustive_check(14, -8);
    }

    #[test]
    fn exhaustive_with_saturation() {
        // e spans −2..11: exercises max saturation incl. round-to-overflow.
        exhaustive_check(14, -2);
    }

    #[test]
    fn exhaustive_with_underflow() {
        // e spans −16..−3: exercises minpos saturation.
        exhaustive_check(14, -16);
    }

    #[test]
    fn matches_accumulator_frame() {
        // The MERSIT(8,2) MAC accumulates with LSB weight 2^-26; a
        // hardware truncation stage would feed the requantizer the top
        // bits of that register. Model that hand-off with a 20-bit
        // magnitude at LSB weight 2^-6 and check agreement with the
        // software encoder across a multiplicative sweep.
        let fmt = Mersit::new(8, 2).unwrap();
        let rq = MersitRequantizer::build(20, -6);
        let mut sim = Simulator::new(&rq.netlist);
        let mut v = 1u64;
        while v < (1 << 20) {
            for off in [0u64, 1, 3] {
                let mag = (v + off).min((1 << 20) - 1);
                let x = mag as f64 * 2f64.powi(-6);
                sim.set(&rq.mag, mag);
                sim.set(&rq.sign, 0);
                sim.step();
                assert_eq!(sim.peek_output("code") as u16, fmt.encode(x), "mag {mag}");
            }
            v = v.wrapping_mul(3) + 7;
        }
    }
}
