//! The full MAC unit of Fig. 2: format multiplier → aligner → Kulisch
//! fixed-point accumulator.
//!
//! The accumulator register is `W + V` bits wide, where
//! `W = 2(|e_min| + e_max) + 1` is the paper's product-range span and the
//! overflow/precision margin `V` covers both the `2M − 2` sub-binade
//! product bits (so accumulation is Kulisch-exact) and `V_OVF` extra bits
//! of headroom for long dot products. Every format gets the identical
//! treatment, preserving the paper's relative comparison.
//!
//! # Harness invariants
//!
//! * **One width formula, three consumers.** [`MacUnit::acc_width_for`]
//!   (`W + 2M − 2 + V_OVF`), the golden model's caller, and the bit-true
//!   executor's `FixTable::acc_width` must size identical registers for
//!   every hardware format — pinned by
//!   `widths_match_mac_unit_formulas_on_hardware_formats` in
//!   `mersit-core::fixpoint`. The shared headroom constant
//!   [`DEFAULT_V_OVF`] is single-sourced from `mersit-core`.
//! * **Gate/golden equivalence.** Simulating the synthesized netlist on
//!   random code streams reproduces [`crate::GoldenMac`]'s wrapped
//!   accumulator bit for bit (the `*_mac_matches_golden` tests below);
//!   the golden model in turn anchors the software bit-true executor.
//! * **LSB weight.** Accumulator bit 0 carries `2^(2·e_min − (2M−2))`;
//!   the aligner shift `exp_sum − 2·e_min` is non-negative for all
//!   finite code pairs by construction.

use crate::mult::{build_multiplier, MultiplierPorts};
use crate::ports::Decoder;
use mersit_core::MacParams;
use mersit_netlist::{Bus, GateId, Netlist};

/// Scope names inside the MAC (for report queries).
pub mod scopes {
    /// The alignment shifter.
    pub const ALIGNER: &str = "aligner";
    /// The Kulisch accumulator (adder + register).
    pub const ACCUMULATOR: &str = "accumulator";
}

/// Default overflow-headroom bits (supports ≥ `2^10` accumulations).
/// Re-exported from `mersit-core` so the gate-level MAC, the golden
/// model, and the bit-true executor size their accumulators from one
/// constant ([`mersit_core::v_ovf_for`] scales it for longer dots).
pub use mersit_core::DEFAULT_V_OVF;

/// A synthesized MAC unit with its port handles.
#[derive(Debug)]
pub struct MacUnit {
    /// The gate-level design.
    pub netlist: Netlist,
    /// Weight code input (8 bits).
    pub w_code: Bus,
    /// Activation code input (8 bits).
    pub a_code: Bus,
    /// Synchronous accumulator clear input (1 bit).
    pub clear: Bus,
    /// Accumulator output, `acc_width` bits two's complement, LSB weight
    /// `2^(2·e_min − (2M − 2))`.
    pub acc: Bus,
    /// MAC sizing parameters of the format.
    pub params: MacParams,
    /// Total accumulator width in bits.
    pub acc_width: usize,
    /// Register gate ids (for introspection).
    pub acc_regs: Vec<GateId>,
    /// Format name.
    pub format_name: String,
}

impl MacUnit {
    /// Builds the MAC for `dec` with the default overflow margin.
    #[must_use]
    pub fn build(dec: &dyn Decoder) -> Self {
        Self::build_with_margin(dec, DEFAULT_V_OVF)
    }

    /// Builds the MAC with `v_ovf` bits of accumulation headroom.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator would exceed 63 bits (simulation reads the
    /// accumulator through `i64`).
    #[must_use]
    pub fn build_with_margin(dec: &dyn Decoder, v_ovf: u32) -> Self {
        let params = dec.params();
        let acc_width = Self::acc_width_for(&params, v_ovf);
        assert!(
            acc_width <= 63,
            "accumulator of {acc_width} bits exceeds the 63-bit simulation limit"
        );
        let mut nl = Netlist::new(format!("mac_{}", crate::ports::sanitize(&dec.name())));
        let w_code = nl.input("w", 8);
        let a_code = nl.input("a", 8);
        let clear = nl.input("clear", 1);

        let mult: MultiplierPorts = build_multiplier(&mut nl, dec, &w_code, &a_code);

        // Aligner: shift the product so bit 0 carries weight
        // 2^(2·e_min − (2M−2)); shift amount = exp_sum − 2·e_min.
        let aligned = nl.scoped(scopes::ALIGNER, |nl| {
            let p1 = mult.exp_sum.width();
            let bias = -2 * i64::from(params.e_min);
            let bias_lit = nl.lit(p1, (bias as u64) & ((1u64 << p1) - 1));
            let (shift_full, _) = nl.ripple_add(&mult.exp_sum, &bias_lit, None);
            // Shift ∈ [0, W−1]; width of the shift amount bus:
            let sh_w = (64 - u64::from(params.w - 1).leading_zeros()) as usize;
            let shift = shift_full.slice(0, sh_w);
            let prod_wide = nl.zext(&mult.prod, acc_width);
            nl.barrel_shl(&prod_wide, &shift)
        });

        // Accumulator: acc' = clear ? 0 : acc + (sign ? −aligned : aligned).
        let (acc_regs, acc) = nl.scoped(scopes::ACCUMULATOR, |nl| {
            let (ids, q) = nl.dff_bus_uninit(acc_width);
            // Conditional negation: XOR with sign, +sign as carry-in.
            let x = Bus(aligned
                .iter()
                .map(|&b| nl.xor2(b, mult.sign))
                .collect::<Vec<_>>());
            let (sum, _) = nl.ripple_add(&q, &x, Some(mult.sign));
            let nclear = nl.not(clear.bit(0));
            let next = Bus(sum.iter().map(|&b| nl.and2(b, nclear)).collect::<Vec<_>>());
            nl.connect_dff_bus(&ids, &next);
            (ids, q)
        });

        nl.output("acc", &acc);
        Self {
            netlist: nl,
            w_code,
            a_code,
            clear,
            acc,
            params,
            acc_width,
            acc_regs,
            format_name: dec.name(),
        }
    }

    /// The accumulator width for given parameters and margin:
    /// `W + (2M − 2) + v_ovf`.
    #[must_use]
    pub fn acc_width_for(params: &MacParams, v_ovf: u32) -> usize {
        (params.w + 2 * params.m - 2 + v_ovf) as usize
    }

    /// LSB weight exponent of the accumulator:
    /// `2·e_min − (2M − 2)`.
    #[must_use]
    pub fn acc_lsb_exp(&self) -> i32 {
        2 * self.params.e_min - (2 * self.params.m as i32 - 2)
    }

    /// Converts a signed accumulator reading to its real value.
    #[must_use]
    pub fn acc_value(&self, raw: i64) -> f64 {
        raw as f64 * 2f64.powi(self.acc_lsb_exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dec_fp8::Fp8Decoder;
    use crate::dec_mersit::MersitDecoder;
    use crate::dec_posit::PositDecoder;
    use crate::golden::GoldenMac;
    use mersit_core::{Format, Fp8, Mersit, Posit};
    use mersit_netlist::Simulator;

    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn check_mac_against_golden(dec: &dyn Decoder, fmt: &dyn Format) {
        let mac = MacUnit::build(dec);
        let mut golden = GoldenMac::new(fmt, mac.acc_width);
        let mut sim = Simulator::new(&mac.netlist);
        sim.reset();
        let mut seed = 0xC0FFEE;
        // Three dot products of 40 random operand pairs each.
        for _ in 0..3 {
            sim.set(&mac.clear, 1);
            sim.clock();
            golden.clear();
            assert_eq!(sim.get_signed(&mac.acc), 0);
            sim.set(&mac.clear, 0);
            for _ in 0..40 {
                let wc = (lcg(&mut seed) & 0xFF) as u16;
                let ac = (lcg(&mut seed) & 0xFF) as u16;
                sim.set(&mac.w_code, u64::from(wc));
                sim.set(&mac.a_code, u64::from(ac));
                sim.clock();
                golden.mac(wc, ac);
                assert_eq!(
                    sim.get_signed(&mac.acc),
                    golden.acc_raw(),
                    "{} after ({wc:#x},{ac:#x})",
                    mac.format_name
                );
            }
            // And the real value must match an f64 dot product of the
            // decoded values exactly (Kulisch exactness).
            let expect = golden.value_f64();
            let got = mac.acc_value(sim.get_signed(&mac.acc));
            assert!(
                (got - expect).abs() < 1e-9,
                "{}: {got} vs {expect}",
                mac.format_name
            );
        }
    }

    #[test]
    fn mersit82_mac_matches_golden() {
        let f = Mersit::new(8, 2).unwrap();
        check_mac_against_golden(&MersitDecoder::new(f.clone()), &f);
    }

    #[test]
    fn posit81_mac_matches_golden() {
        let f = Posit::new(8, 1).unwrap();
        check_mac_against_golden(&PositDecoder::new(f.clone()), &f);
    }

    #[test]
    fn fp84_mac_matches_golden() {
        let f = Fp8::new(4).unwrap();
        check_mac_against_golden(&Fp8Decoder::new(f.clone()), &f);
    }

    #[test]
    fn acc_widths_follow_fig2() {
        // W = 33 / 45 / 35 per Fig. 2, plus 2M−2 product bits + margin.
        let fp = MacUnit::build(&Fp8Decoder::new(Fp8::new(4).unwrap()));
        assert_eq!(fp.acc_width, 33 + 6 + 10);
        let po = MacUnit::build(&PositDecoder::new(Posit::new(8, 1).unwrap()));
        assert_eq!(po.acc_width, 45 + 8 + 10);
        let me = MacUnit::build(&MersitDecoder::new(Mersit::new(8, 2).unwrap()));
        assert_eq!(me.acc_width, 35 + 8 + 10);
    }

    #[test]
    fn clear_zeroes_accumulator() {
        let f = Mersit::new(8, 2).unwrap();
        let mac = MacUnit::build(&MersitDecoder::new(f.clone()));
        let mut sim = Simulator::new(&mac.netlist);
        sim.reset();
        sim.set(&mac.w_code, u64::from(f.encode(1.0)));
        sim.set(&mac.a_code, u64::from(f.encode(1.0)));
        sim.set(&mac.clear, 0);
        sim.clock();
        assert!(sim.get_signed(&mac.acc) > 0);
        sim.set(&mac.clear, 1);
        sim.clock();
        assert_eq!(sim.get_signed(&mac.acc), 0);
    }
}
