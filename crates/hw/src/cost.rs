//! Workload-driven area / power evaluation of multipliers and MACs —
//! the engine behind Fig. 7 and Table 3.
//!
//! Power follows the paper's methodology: the synthesized design is
//! simulated with *actual DNN operand data* and the average switching
//! activity is converted to power at 100 MHz.

use crate::mac::{scopes as mac_scopes, MacUnit};
use crate::mult::{scopes as mult_scopes, standalone_multiplier};
use crate::ports::Decoder;
use mersit_core::{Format, FormatRef, InvalidFormatError};
use mersit_netlist::{AreaReport, PowerReport, Simulator};
use std::collections::HashMap;
use std::fmt;

/// Area and power of one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Average power in µW at 100 MHz.
    pub power_uw: f64,
}

impl fmt::Display for BlockCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:8.1} um^2  {:8.2} uW", self.area_um2, self.power_uw)
    }
}

/// The Table 3 structure: multiplier broken into decoder / exponent adder /
/// fraction multiplier.
#[derive(Debug, Clone)]
pub struct MultiplierBreakdown {
    /// Format name.
    pub name: String,
    /// The two decoders.
    pub decoder: BlockCost,
    /// The signed exponent adder.
    pub exp_adder: BlockCost,
    /// The unsigned fraction multiplier.
    pub frac_mul: BlockCost,
    /// Whole multiplier (including the sign XOR and flag gates).
    pub total: BlockCost,
}

/// The Fig. 7 structure: the full MAC broken into its main stages.
#[derive(Debug, Clone)]
pub struct MacBreakdown {
    /// Format name.
    pub name: String,
    /// The multiplier (decoders included).
    pub multiplier: BlockCost,
    /// Just the decoder pair.
    pub decoder: BlockCost,
    /// The alignment shifter.
    pub aligner: BlockCost,
    /// The Kulisch accumulator (adder + register).
    pub accumulator: BlockCost,
    /// Whole MAC.
    pub total: BlockCost,
    /// Accumulator width (W + V).
    pub acc_width: usize,
}

/// Encodes parallel weight/activation samples into operand-pair streams.
/// The two slices are cycled to equal length.
///
/// # Panics
///
/// Panics if either slice is empty.
#[must_use]
pub fn encode_stream(fmt: &dyn Format, weights: &[f64], acts: &[f64]) -> Vec<(u16, u16)> {
    assert!(
        !weights.is_empty() && !acts.is_empty(),
        "empty operand data"
    );
    let n = weights.len().max(acts.len());
    (0..n)
        .map(|i| {
            (
                fmt.encode(weights[i % weights.len()]),
                fmt.encode(acts[i % acts.len()]),
            )
        })
        .collect()
}

/// A deterministic xorshift stream of roughly-Gaussian samples (sum of four
/// uniforms), handy for synthetic workloads.
#[must_use]
pub fn gaussian_samples(n: usize, std: f64, seed: u64) -> Vec<f64> {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / f64::from(1u32 << 21) / f64::from(1u32 << 21) / 2048.0
    };
    (0..n)
        .map(|_| {
            let u: f64 = (0..4).map(|_| next()).sum::<f64>() - 2.0;
            u * std * 1.732 // var of sum of 4 uniforms = 1/3
        })
        .collect()
}

fn costs(area: &AreaReport, power: &PowerReport, prefix: &str) -> BlockCost {
    BlockCost {
        area_um2: area.scope_area(prefix),
        power_uw: power.scope_power(prefix),
    }
}

/// Evaluates a standalone multiplier on an operand stream (Table 3 row).
///
/// # Panics
///
/// Panics on an empty stream.
#[must_use]
pub fn multiplier_cost(dec: &dyn Decoder, stream: &[(u16, u16)]) -> MultiplierBreakdown {
    assert!(!stream.is_empty(), "empty operand stream");
    let _span = mersit_obs::span_dyn(|| format!("hw.cost.multiplier.{}", dec.name()));
    mersit_obs::add("hw.cost.sim_steps", stream.len() as u64);
    let (nl, w, a, _) = standalone_multiplier(dec);
    let mut sim = Simulator::new(&nl);
    for &(wc, ac) in stream {
        sim.set(&w, u64::from(wc));
        sim.set(&a, u64::from(ac));
        sim.step();
    }
    let area = AreaReport::of(&nl);
    let power = PowerReport::at_100mhz(&sim);
    let root = nl.name().to_owned();
    let mp = format!("{root}/{}", mult_scopes::MULTIPLIER);
    MultiplierBreakdown {
        name: dec.name(),
        decoder: costs(&area, &power, &format!("{mp}/{}", mult_scopes::DECODER)),
        exp_adder: costs(&area, &power, &format!("{mp}/{}", mult_scopes::EXP_ADDER)),
        frac_mul: costs(&area, &power, &format!("{mp}/{}", mult_scopes::FRAC_MUL)),
        total: BlockCost {
            area_um2: area.total_um2,
            power_uw: power.total_uw(),
        },
    }
}

/// Evaluates a full MAC on an operand stream (Fig. 7 bar).
///
/// The accumulator is cleared every `dot_len` operands, modelling repeated
/// dot products.
///
/// # Panics
///
/// Panics on an empty stream or `dot_len == 0`.
#[must_use]
pub fn mac_cost(dec: &dyn Decoder, stream: &[(u16, u16)], dot_len: usize) -> MacBreakdown {
    mac_cost_with_margin(dec, stream, dot_len, crate::mac::DEFAULT_V_OVF)
}

/// [`mac_cost`] with an explicit overflow margin.
///
/// # Panics
///
/// Panics on an empty stream or `dot_len == 0`.
#[must_use]
pub fn mac_cost_with_margin(
    dec: &dyn Decoder,
    stream: &[(u16, u16)],
    dot_len: usize,
    v_ovf: u32,
) -> MacBreakdown {
    assert!(!stream.is_empty(), "empty operand stream");
    assert!(dot_len > 0, "dot_len must be positive");
    let _span = mersit_obs::span_dyn(|| format!("hw.cost.mac.{}", dec.name()));
    mersit_obs::add("hw.cost.sim_steps", stream.len() as u64);
    let mac = MacUnit::build_with_margin(dec, v_ovf);
    let mut sim = Simulator::new(&mac.netlist);
    sim.reset();
    for (i, &(wc, ac)) in stream.iter().enumerate() {
        sim.set(&mac.clear, u64::from(i % dot_len == 0));
        sim.set(&mac.w_code, u64::from(wc));
        sim.set(&mac.a_code, u64::from(ac));
        sim.clock();
    }
    let area = AreaReport::of(&mac.netlist);
    let power = PowerReport::at_100mhz(&sim);
    let root = mac.netlist.name().to_owned();
    let mp = format!("{root}/{}", mult_scopes::MULTIPLIER);
    MacBreakdown {
        name: mac.format_name.clone(),
        multiplier: costs(&area, &power, &mp),
        decoder: costs(&area, &power, &format!("{mp}/{}", mult_scopes::DECODER)),
        aligner: costs(&area, &power, &format!("{root}/{}", mac_scopes::ALIGNER)),
        accumulator: costs(
            &area,
            &power,
            &format!("{root}/{}", mac_scopes::ACCUMULATOR),
        ),
        total: BlockCost {
            area_um2: area.total_um2,
            power_uw: power.total_uw(),
        },
        acc_width: mac.acc_width,
    }
}

/// A memoizing front-end over [`mac_cost`]: one gate-level MAC
/// simulation per distinct format name, shared across every
/// [`assignment_cost`] roll-up — the per-layer assignment search probes
/// hundreds of assignments built from a handful of formats, and must not
/// re-simulate the same MAC at every swap step.
#[derive(Debug)]
pub struct MacCostCache {
    weights: Vec<f64>,
    acts: Vec<f64>,
    dot_len: usize,
    cache: HashMap<String, MacBreakdown>,
    hits: u64,
    misses: u64,
}

impl MacCostCache {
    /// A cache simulating every format's MAC on the same operand value
    /// pools (encoded per format), with accumulators cleared every
    /// `dot_len` operands.
    ///
    /// # Panics
    ///
    /// Panics if either pool is empty or `dot_len` is 0.
    #[must_use]
    pub fn new(weights: Vec<f64>, acts: Vec<f64>, dot_len: usize) -> Self {
        assert!(
            !weights.is_empty() && !acts.is_empty(),
            "empty operand pools"
        );
        assert!(dot_len > 0, "dot_len must be positive");
        Self {
            weights,
            acts,
            dot_len,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The MAC breakdown for a format, simulated on first use and served
    /// from the cache afterwards.
    ///
    /// # Errors
    ///
    /// Returns an error when the format has no hardware decoder (INT8,
    /// or an unknown name).
    pub fn breakdown(&mut self, fmt: &FormatRef) -> Result<&MacBreakdown, InvalidFormatError> {
        let name = fmt.name();
        if self.cache.contains_key(&name) {
            self.hits += 1;
            mersit_obs::incr("hw.cost.mac_cache.hit");
        } else {
            let dec = crate::decoder_for(&name)?;
            let stream = encode_stream(fmt.as_ref(), &self.weights, &self.acts);
            let bd = mac_cost(dec.as_ref(), &stream, self.dot_len);
            self.cache.insert(name.clone(), bd);
            self.misses += 1;
            mersit_obs::incr("hw.cost.mac_cache.miss");
        }
        Ok(&self.cache[&name])
    }

    /// Cache hits served so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct formats simulated so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The hardware cost of one per-layer format assignment, rolled up over
/// the layers' MAC counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignmentCost {
    /// MAC-count-weighted mean per-MAC cell area (µm²) — the area of the
    /// average MAC executed under this assignment.
    pub area_um2: f64,
    /// MAC-count-weighted mean per-MAC power (µW at 100 MHz).
    pub power_uw: f64,
    /// Total MACs the weighting covered.
    pub macs: u64,
}

/// Rolls up the per-assignment hardware cost: each layer contributes its
/// format's full-MAC area/power weighted by the layer's MAC count
/// (`Σ macs·cost / Σ macs`). Layers with zero MACs (embedding lookups)
/// contribute nothing. MAC breakdowns come from `cache`, so repeated
/// formats simulate once.
///
/// # Errors
///
/// Returns an error when any layer with MACs uses a format that has no
/// hardware decoder.
///
/// # Panics
///
/// Panics when every layer has zero MACs (an empty roll-up has no
/// meaningful weighted mean).
pub fn assignment_cost(
    cache: &mut MacCostCache,
    layers: &[(FormatRef, u64)],
) -> Result<AssignmentCost, InvalidFormatError> {
    let mut area = 0.0f64;
    let mut power = 0.0f64;
    let mut macs = 0u64;
    for (fmt, m) in layers {
        if *m == 0 {
            continue;
        }
        let bd = cache.breakdown(fmt)?;
        area += bd.total.area_um2 * *m as f64;
        power += bd.total.power_uw * *m as f64;
        macs += m;
    }
    assert!(macs > 0, "assignment_cost over zero MACs");
    Ok(AssignmentCost {
        area_um2: area / macs as f64,
        power_uw: power / macs as f64,
        macs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dec_fp8::Fp8Decoder;
    use crate::dec_mersit::MersitDecoder;
    use crate::dec_posit::PositDecoder;
    use mersit_core::{parse_format, Fp8, Mersit, Posit};

    fn stream_for(fmt: &dyn Format) -> Vec<(u16, u16)> {
        let w = gaussian_samples(200, 0.05, 7);
        let a = gaussian_samples(200, 1.0, 13);
        encode_stream(fmt, &w, &a)
    }

    #[test]
    fn gaussian_samples_are_deterministic_and_centered() {
        let a = gaussian_samples(2000, 1.0, 42);
        let b = gaussian_samples(2000, 1.0, 42);
        assert_eq!(a, b);
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let var = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / a.len() as f64;
        assert!((var - 1.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn table3_shape_posit_decoder_dominates() {
        let fp = Fp8::new(4).unwrap();
        let po = Posit::new(8, 1).unwrap();
        let me = Mersit::new(8, 2).unwrap();
        let c_fp = multiplier_cost(&Fp8Decoder::new(fp.clone()), &stream_for(&fp));
        let c_po = multiplier_cost(&PositDecoder::new(po.clone()), &stream_for(&po));
        let c_me = multiplier_cost(&MersitDecoder::new(me.clone()), &stream_for(&me));
        // Table 3 ordering: MERSIT decoder < FP decoder < Posit decoder.
        assert!(c_me.decoder.area_um2 < c_fp.decoder.area_um2);
        assert!(c_fp.decoder.area_um2 < c_po.decoder.area_um2);
        // Posit multiplier total well above the other two.
        assert!(c_po.total.area_um2 > 1.2 * c_me.total.area_um2);
        assert!(c_po.total.area_um2 > 1.2 * c_fp.total.area_um2);
    }

    #[test]
    fn fig7_shape_posit_mac_largest() {
        let fp = Fp8::new(4).unwrap();
        let po = Posit::new(8, 1).unwrap();
        let me = Mersit::new(8, 2).unwrap();
        let c_fp = mac_cost(&Fp8Decoder::new(fp.clone()), &stream_for(&fp), 32);
        let c_po = mac_cost(&PositDecoder::new(po.clone()), &stream_for(&po), 32);
        let c_me = mac_cost(&MersitDecoder::new(me.clone()), &stream_for(&me), 32);
        // Fig. 7: Posit MAC area and power well above FP8 and MERSIT.
        assert!(c_po.total.area_um2 > c_me.total.area_um2);
        assert!(c_po.total.area_um2 > c_fp.total.area_um2);
        assert!(c_po.total.power_uw > c_me.total.power_uw);
        // MERSIT's W=35 vs FP's W=33: slightly larger than FP8 but close.
        assert!(c_me.total.area_um2 > c_fp.total.area_um2);
        assert!(c_me.total.area_um2 < 1.5 * c_fp.total.area_um2);
        // Breakdown sums are bounded by the total.
        for c in [&c_fp, &c_po, &c_me] {
            let sum = c.multiplier.area_um2 + c.aligner.area_um2 + c.accumulator.area_um2;
            assert!(sum <= c.total.area_um2 + 1e-6, "{}", c.name);
        }
    }

    #[test]
    fn assignment_cost_weights_by_macs_and_memoizes() {
        let w = gaussian_samples(120, 0.05, 7);
        let a = gaussian_samples(120, 1.0, 13);
        let mut cache = MacCostCache::new(w, a, 32);
        let me = parse_format("MERSIT(8,2)").unwrap();
        let fp = parse_format("FP(8,4)").unwrap();

        // Uniform assignment == the plain MAC cost of that format.
        let uni = assignment_cost(&mut cache, &[(me.clone(), 700), (me.clone(), 300)]).unwrap();
        let me_total = cache.breakdown(&me).unwrap().total;
        assert!((uni.area_um2 - me_total.area_um2).abs() < 1e-9);
        assert!((uni.power_uw - me_total.power_uw).abs() < 1e-9);
        assert_eq!(uni.macs, 1000);

        // A 50/50 MAC split lands exactly between the two formats.
        let mix = assignment_cost(&mut cache, &[(me.clone(), 500), (fp.clone(), 500)]).unwrap();
        let fp_total = cache.breakdown(&fp).unwrap().total;
        let mid = 0.5 * (me_total.area_um2 + fp_total.area_um2);
        assert!(
            (mix.area_um2 - mid).abs() < 1e-9,
            "{} vs {mid}",
            mix.area_um2
        );
        // Zero-MAC layers are ignored, even unpriceable ones.
        let with_zero = assignment_cost(
            &mut cache,
            &[
                (me.clone(), 500),
                (fp.clone(), 500),
                (parse_format("INT8").unwrap(), 0),
            ],
        )
        .unwrap();
        assert_eq!(with_zero, mix);

        // Two formats simulated once each; everything else was a hit.
        assert_eq!(cache.misses(), 2);
        assert!(cache.hits() >= 6, "hits {}", cache.hits());

        // INT8 with MACs has no decoder: the roll-up reports it.
        assert!(assignment_cost(&mut cache, &[(parse_format("INT8").unwrap(), 10)]).is_err());
    }

    #[test]
    fn encode_stream_cycles_shorter_slice() {
        let f = Mersit::new(8, 2).unwrap();
        let s = encode_stream(&f, &[1.0], &[0.5, 0.25, 0.125]);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&(w, _)| w == f.encode(1.0)));
    }
}
