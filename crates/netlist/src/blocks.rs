//! Parameterized arithmetic blocks: adders, shifters, multipliers,
//! comparators and leading-zero logic — the "widely used circuits" of §3.3
//! that every MAC variant shares.

use crate::netlist::{Bus, NetId, Netlist, CONST0};

impl Netlist {
    /// Ripple-carry adder: returns `(sum, carry_out)`, sum width = operand
    /// width.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or empty operands.
    pub fn ripple_add(&mut self, a: &Bus, b: &Bus, cin: Option<NetId>) -> (Bus, NetId) {
        assert_eq!(a.width(), b.width(), "adder width mismatch");
        assert!(a.width() > 0, "empty adder");
        let mut sum = Vec::with_capacity(a.width());
        let mut carry = cin;
        for i in 0..a.width() {
            let (s, c) = match carry {
                None => self.ha(a.bit(i), b.bit(i)),
                Some(c0) => self.fa(a.bit(i), b.bit(i), c0),
            };
            sum.push(s);
            carry = Some(c);
        }
        (Bus(sum), carry.expect("non-empty adder"))
    }

    /// Adder with result width extended by one bit (no overflow loss),
    /// treating the operands as **unsigned**.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_extend(&mut self, a: &Bus, b: &Bus) -> Bus {
        let (sum, cout) = self.ripple_add(a, b, None);
        sum.concat(&cout.into())
    }

    /// Two's-complement **signed** adder producing a `max(w)+1`-bit result
    /// (the "Signed Adder (P+1)" of Fig. 2).
    pub fn signed_add(&mut self, a: &Bus, b: &Bus) -> Bus {
        let w = a.width().max(b.width()) + 1;
        let ax = self.sext(a, w);
        let bx = self.sext(b, w);
        let (sum, _) = self.ripple_add(&ax, &bx, None);
        sum
    }

    /// Two's-complement negation.
    pub fn negate(&mut self, a: &Bus) -> Bus {
        let inv = self.not_bus(a);
        self.increment(&inv).slice(0, a.width())
    }

    /// Incrementer: `a + 1`, width extended by one bit.
    pub fn increment(&mut self, a: &Bus) -> Bus {
        let mut out = Vec::with_capacity(a.width() + 1);
        let mut carry = crate::netlist::CONST1;
        for i in 0..a.width() {
            let (s, c) = self.ha(a.bit(i), carry);
            out.push(s);
            carry = c;
        }
        out.push(carry);
        Bus(out)
    }

    /// Subtractor `a − b` (two's complement): returns `(diff, no_borrow)`
    /// where `no_borrow = 1` iff `a >= b` for unsigned operands.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn ripple_sub(&mut self, a: &Bus, b: &Bus) -> (Bus, NetId) {
        let nb = self.not_bus(b);
        self.ripple_add(a, &nb, Some(crate::netlist::CONST1))
    }

    /// `1` iff the bus equals the constant `value`.
    pub fn eq_const(&mut self, a: &Bus, value: u64) -> NetId {
        let terms: Vec<NetId> = (0..a.width())
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    a.bit(i)
                } else {
                    self.not(a.bit(i))
                }
            })
            .collect();
        self.and_reduce(&terms)
    }

    /// `1` iff the bus is all zeros.
    pub fn is_zero(&mut self, a: &Bus) -> NetId {
        let any = self.or_reduce(&a.0);
        self.not(any)
    }

    /// `1` iff the bus is all ones.
    pub fn is_ones(&mut self, a: &Bus) -> NetId {
        self.and_reduce(&a.0)
    }

    /// Logical left barrel shifter: `a << sh`, output width = input width,
    /// vacated bits filled with zero. `sh` is unsigned.
    pub fn barrel_shl(&mut self, a: &Bus, sh: &Bus) -> Bus {
        let mut cur = a.clone();
        for (stage, &sel) in sh.iter().enumerate() {
            let dist = 1usize << stage;
            if dist >= cur.width() {
                // Shifting by >= width zeroes everything when sel is set.
                let zeros = Bus(vec![CONST0; cur.width()]);
                cur = self.mux2_bus(sel, &zeros, &cur);
                continue;
            }
            let mut shifted = vec![CONST0; dist];
            shifted.extend_from_slice(&cur.0[..cur.width() - dist]);
            cur = self.mux2_bus(sel, &Bus(shifted), &cur);
        }
        cur
    }

    /// Logical right barrel shifter: `a >> sh`, zero fill.
    pub fn barrel_shr(&mut self, a: &Bus, sh: &Bus) -> Bus {
        let mut cur = a.clone();
        for (stage, &sel) in sh.iter().enumerate() {
            let dist = 1usize << stage;
            if dist >= cur.width() {
                let zeros = Bus(vec![CONST0; cur.width()]);
                cur = self.mux2_bus(sel, &zeros, &cur);
                continue;
            }
            let mut shifted = cur.0[dist..].to_vec();
            shifted.extend(std::iter::repeat_n(CONST0, dist));
            cur = self.mux2_bus(sel, &Bus(shifted), &cur);
        }
        cur
    }

    /// Unsigned array multiplier: partial-product AND matrix reduced with
    /// half/full adders, result width `a.width() + b.width()`.
    ///
    /// # Panics
    ///
    /// Panics on empty operands.
    pub fn array_mul(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert!(a.width() > 0 && b.width() > 0, "empty multiplier");
        let w = a.width() + b.width();
        // Column-wise partial products.
        let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); w];
        for i in 0..a.width() {
            for j in 0..b.width() {
                let pp = self.and2(a.bit(i), b.bit(j));
                cols[i + j].push(pp);
            }
        }
        // Carry-save reduction: compress each column to <= 2 entries, pushing
        // carries into the next column (Wallace-style, order-insensitive).
        for i in 0..w {
            while cols[i].len() > 2 {
                let x = cols[i].pop().unwrap();
                let y = cols[i].pop().unwrap();
                let z = cols[i].pop().unwrap();
                let (s, c) = self.fa(x, y, z);
                cols[i].push(s);
                if i + 1 < w {
                    cols[i + 1].push(c);
                }
            }
        }
        // Final carry-propagate over the two remaining rows.
        let mut out = Vec::with_capacity(w);
        let mut carry: Option<NetId> = None;
        for i in 0..w {
            let (x, y) = match cols[i].len() {
                0 => (CONST0, CONST0),
                1 => (cols[i][0], CONST0),
                _ => (cols[i][0], cols[i][1]),
            };
            let (s, c) = match carry {
                None => self.ha(x, y),
                Some(c0) => self.fa(x, y, c0),
            };
            out.push(s);
            carry = Some(c);
        }
        Bus(out)
    }

    /// Leading-zero counter over `a` read **MSB first**: returns the number
    /// of consecutive zero bits starting at the MSB, as a
    /// `ceil(log2(w+1))`-bit bus. An all-zero input returns `w`.
    pub fn leading_zero_count(&mut self, a: &Bus) -> Bus {
        let w = a.width();
        let out_w = usize::BITS as usize - w.leading_zeros() as usize; // bits for 0..=w
                                                                       // prefix_zero[i] = 1 iff bits (w-1) ..= (w-i) are all zero.
                                                                       // count = sum over i of prefix_zero up to first one.
                                                                       // Implement as priority chain: sel_i = "first one at position i from MSB".
        let mut not_bits = Vec::with_capacity(w);
        for i in (0..w).rev() {
            not_bits.push(self.not(a.bit(i))); // MSB-first inverted bits
        }
        // prefix[i] = AND of not_bits[0..=i]
        let mut prefix = Vec::with_capacity(w);
        let mut acc = not_bits[0];
        prefix.push(acc);
        for &nb in &not_bits[1..] {
            acc = self.and2(acc, nb);
            prefix.push(acc);
        }
        // count = Σ prefix[i] (number of leading zeros) — adder tree over bits.
        let mut count = self.lit(out_w, 0);
        for &p in &prefix {
            let pb = self.zext(&Bus(vec![p]), out_w);
            let (s, _) = self.ripple_add(&count, &pb, None);
            count = s;
        }
        count
    }

    /// Leading-one position detector (priority encoder from the MSB):
    /// returns one-hot `sel` (LSB of `sel` = MSB of `a`) and a `none`
    /// flag set when the bus is all zeros.
    pub fn priority_from_msb(&mut self, a: &Bus) -> (Vec<NetId>, NetId) {
        let w = a.width();
        let mut sel = Vec::with_capacity(w);
        let mut none_so_far = crate::netlist::CONST1;
        for i in (0..w).rev() {
            let here = self.and2(none_so_far, a.bit(i));
            sel.push(here);
            let nbit = self.not(a.bit(i));
            none_so_far = self.and2(none_so_far, nbit);
        }
        (sel, none_so_far)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn run1(nl: &Netlist, sets: &[(&Bus, u64)], out: &str) -> u64 {
        let mut sim = Simulator::new(nl);
        for (b, v) in sets {
            sim.set(b, *v);
        }
        sim.step();
        sim.peek_output(out)
    }

    #[test]
    fn ripple_add_exhaustive_4bit() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let (s, c) = nl.ripple_add(&a, &b, None);
        nl.output("o", &s.concat(&c.into()));
        let mut sim = Simulator::new(&nl);
        for x in 0..16u64 {
            for y in 0..16u64 {
                sim.set(&a, x);
                sim.set(&b, y);
                sim.step();
                assert_eq!(sim.peek_output("o"), x + y);
            }
        }
    }

    #[test]
    fn signed_add_covers_negatives() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 5);
        let b = nl.input("b", 5);
        let s = nl.signed_add(&a, &b);
        nl.output("o", &s);
        let mut sim = Simulator::new(&nl);
        for x in -16i64..16 {
            for y in -16i64..16 {
                sim.set(&a, (x as u64) & 0x1F);
                sim.set(&b, (y as u64) & 0x1F);
                sim.step();
                assert_eq!(sim.get_signed(&s), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtract_and_borrow() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let (d, ge) = nl.ripple_sub(&a, &b);
        nl.output("d", &d);
        nl.output("ge", &Bus(vec![ge]));
        let mut sim = Simulator::new(&nl);
        for x in 0..16u64 {
            for y in 0..16u64 {
                sim.set(&a, x);
                sim.set(&b, y);
                sim.step();
                assert_eq!(sim.peek_output("d"), x.wrapping_sub(y) & 0xF);
                assert_eq!(sim.peek_output("ge"), u64::from(x >= y));
            }
        }
    }

    #[test]
    fn negate_two_complement() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let n = nl.negate(&a);
        nl.output("o", &n);
        for x in 0..16u64 {
            assert_eq!(run1(&nl, &[(&a, x)], "o"), x.wrapping_neg() & 0xF);
        }
    }

    #[test]
    fn multiplier_exhaustive_5x5() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 5);
        let b = nl.input("b", 5);
        let p = nl.array_mul(&a, &b);
        assert_eq!(p.width(), 10);
        nl.output("p", &p);
        let mut sim = Simulator::new(&nl);
        for x in 0..32u64 {
            for y in 0..32u64 {
                sim.set(&a, x);
                sim.set(&b, y);
                sim.step();
                assert_eq!(sim.peek_output("p"), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn multiplier_asymmetric() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 3);
        let b = nl.input("b", 7);
        let p = nl.array_mul(&a, &b);
        nl.output("p", &p);
        let mut sim = Simulator::new(&nl);
        for x in 0..8u64 {
            for y in 0..128u64 {
                sim.set(&a, x);
                sim.set(&b, y);
                sim.step();
                assert_eq!(sim.peek_output("p"), x * y);
            }
        }
    }

    #[test]
    fn barrel_shifters() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8);
        let sh = nl.input("sh", 3);
        let l = nl.barrel_shl(&a, &sh);
        let r = nl.barrel_shr(&a, &sh);
        nl.output("l", &l);
        nl.output("r", &r);
        let mut sim = Simulator::new(&nl);
        for x in [0x01u64, 0x80, 0xA5, 0xFF, 0x3C] {
            for s in 0..8u64 {
                sim.set(&a, x);
                sim.set(&sh, s);
                sim.step();
                assert_eq!(sim.peek_output("l"), (x << s) & 0xFF, "{x} << {s}");
                assert_eq!(sim.peek_output("r"), x >> s, "{x} >> {s}");
            }
        }
    }

    #[test]
    fn barrel_shift_saturates_beyond_width() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        let sh = nl.input("sh", 4); // can encode shift 8..15 >= width
        let l = nl.barrel_shl(&a, &sh);
        nl.output("l", &l);
        let mut sim = Simulator::new(&nl);
        sim.set(&a, 0xF);
        sim.set(&sh, 9);
        sim.step();
        assert_eq!(sim.peek_output("l"), 0);
    }

    #[test]
    fn comparators() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 5);
        let eq7 = nl.eq_const(&a, 7);
        let z = nl.is_zero(&a);
        let o = nl.is_ones(&a);
        nl.output("o", &Bus(vec![eq7, z, o]));
        let mut sim = Simulator::new(&nl);
        for x in 0..32u64 {
            sim.set(&a, x);
            sim.step();
            let got = sim.peek_output("o");
            assert_eq!(got & 1, u64::from(x == 7));
            assert_eq!((got >> 1) & 1, u64::from(x == 0));
            assert_eq!((got >> 2) & 1, u64::from(x == 31));
        }
    }

    #[test]
    fn lzc_matches_reference() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 7);
        let c = nl.leading_zero_count(&a);
        nl.output("c", &c);
        let mut sim = Simulator::new(&nl);
        for x in 0..128u64 {
            sim.set(&a, x);
            sim.step();
            let expect = if x == 0 {
                7
            } else {
                6 - (63 - x.leading_zeros() as u64)
            };
            assert_eq!(sim.peek_output("c"), expect, "lzc({x:07b})");
        }
    }

    #[test]
    fn priority_encoder_first_one() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 6);
        let (sel, none) = nl.priority_from_msb(&a);
        nl.output("sel", &Bus(sel));
        nl.output("none", &Bus(vec![none]));
        let mut sim = Simulator::new(&nl);
        for x in 0..64u64 {
            sim.set(&a, x);
            sim.step();
            let sel = sim.peek_output("sel");
            if x == 0 {
                assert_eq!(sel, 0);
                assert_eq!(sim.peek_output("none"), 1);
            } else {
                // first one from MSB (bit 5) maps to sel bit 0
                let msb_pos = 63 - x.leading_zeros() as u64;
                assert_eq!(sel, 1 << (5 - msb_pos));
                assert_eq!(sim.peek_output("none"), 0);
            }
        }
    }
}
