//! The standard-cell library: cell kinds with area, switching energy and
//! leakage characteristics of a 45 nm-class process.
//!
//! The numbers are calibrated to the NanGate FreePDK45 open cell library
//! (X1 drive strengths, typical corner) — the closest open stand-in for the
//! commercial 45 nm library the paper synthesized with. Absolute µm² / µW
//! therefore differ from the paper's library, but *relative* costs between
//! designs (the paper's claim) are preserved because every design is built
//! from the same cells.

use std::fmt;

/// Supply voltage of the process model (V).
pub const VDD: f64 = 1.1;
/// Default clock frequency used for power reporting (Hz) — the paper
/// synthesizes at 100 MHz.
pub const DEFAULT_CLOCK_HZ: f64 = 100.0e6;

/// The primitive cell kinds available to designs.
///
/// `Fa`/`Ha` are full/half adder cells (mapped as single cells, as a
/// commercial synthesis flow would), `Dff` is a rising-edge D flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Buffer (identity; used to tap a net into another scope).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer: inputs `[d0, d1, sel]`, output `sel ? d1 : d0`.
    Mux2,
    /// Half adder: inputs `[a, b]`, outputs `[sum, carry]`.
    Ha,
    /// Full adder: inputs `[a, b, cin]`, outputs `[sum, carry]`.
    Fa,
    /// Rising-edge D flip-flop: input `[d]`, output `[q]`.
    Dff,
}

impl CellKind {
    /// All cell kinds, for iteration in reports.
    pub const ALL: [CellKind; 12] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Ha,
        CellKind::Fa,
        CellKind::Dff,
    ];

    /// Number of input pins.
    #[must_use]
    pub fn num_inputs(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Ha => 2,
            CellKind::Mux2 | CellKind::Fa => 3,
        }
    }

    /// Number of output pins.
    #[must_use]
    pub fn num_outputs(self) -> usize {
        match self {
            CellKind::Ha | CellKind::Fa => 2,
            _ => 1,
        }
    }

    /// Cell area in µm² (NanGate FreePDK45 X1 footprints).
    #[must_use]
    pub fn area_um2(self) -> f64 {
        match self {
            CellKind::Inv => 0.532,
            CellKind::Buf => 0.798,
            CellKind::Nand2 => 0.798,
            CellKind::Nor2 => 0.798,
            CellKind::And2 => 1.064,
            CellKind::Or2 => 1.064,
            CellKind::Xor2 => 1.596,
            CellKind::Xnor2 => 1.862,
            CellKind::Mux2 => 1.862,
            CellKind::Ha => 3.192,
            CellKind::Fa => 4.788,
            CellKind::Dff => 4.522,
        }
    }

    /// Energy per output toggle in femtojoules (switched + internal
    /// capacitance at `VDD`, typical corner).
    #[must_use]
    pub fn switch_energy_fj(self) -> f64 {
        match self {
            CellKind::Inv => 0.65,
            CellKind::Buf => 1.10,
            CellKind::Nand2 => 0.95,
            CellKind::Nor2 => 0.95,
            CellKind::And2 => 1.30,
            CellKind::Or2 => 1.30,
            CellKind::Xor2 => 2.10,
            CellKind::Xnor2 => 2.30,
            CellKind::Mux2 => 2.40,
            CellKind::Ha => 3.90,
            CellKind::Fa => 6.40,
            CellKind::Dff => 5.20,
        }
    }

    /// Per-cycle clock-tree / internal-clocking energy for sequential cells
    /// (fJ per clock edge, paid whether or not the output toggles).
    #[must_use]
    pub fn clock_energy_fj(self) -> f64 {
        match self {
            CellKind::Dff => 1.80,
            _ => 0.0,
        }
    }

    /// Leakage power in nanowatts (typical corner, 25 °C).
    #[must_use]
    pub fn leakage_nw(self) -> f64 {
        // Roughly proportional to area at this node.
        self.area_um2() * 18.0
    }

    /// Whether the cell is sequential (state-holding).
    #[must_use]
    pub fn is_sequential(self) -> bool {
        self == CellKind::Dff
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Ha => "HA",
            CellKind::Fa => "FA",
            CellKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts() {
        assert_eq!(CellKind::Inv.num_inputs(), 1);
        assert_eq!(CellKind::Fa.num_inputs(), 3);
        assert_eq!(CellKind::Fa.num_outputs(), 2);
        assert_eq!(CellKind::Mux2.num_inputs(), 3);
        assert_eq!(CellKind::Mux2.num_outputs(), 1);
    }

    #[test]
    fn library_is_physically_plausible() {
        for k in CellKind::ALL {
            assert!(k.area_um2() > 0.0);
            assert!(k.switch_energy_fj() > 0.0);
            assert!(k.leakage_nw() > 0.0);
        }
        // An FA is bigger than a NAND; an XOR costs more energy than an INV.
        assert!(CellKind::Fa.area_um2() > CellKind::Nand2.area_um2());
        assert!(CellKind::Xor2.switch_energy_fj() > CellKind::Inv.switch_energy_fj());
        // Only the DFF draws clock energy.
        assert!(CellKind::Dff.clock_energy_fj() > 0.0);
        assert_eq!(CellKind::And2.clock_energy_fj(), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
        assert_eq!(CellKind::Dff.to_string(), "DFF");
    }
}
