//! # mersit-netlist — a gate-level EDA substrate
//!
//! Structural netlist construction, levelized logic simulation with toggle
//! counting, and 45 nm-class area / activity-based power estimation. This
//! crate stands in for the paper's Synopsys Design Compiler + PrimeTime PX
//! flow: designs are built from a fixed standard-cell library, simulated
//! with real operand streams, and reported in µm² / µW at 100 MHz.
//!
//! ## Quick example
//!
//! ```
//! use mersit_netlist::{AreaReport, Netlist, PowerReport, Simulator};
//!
//! // A 4-bit adder.
//! let mut nl = Netlist::new("adder");
//! let a = nl.input("a", 4);
//! let b = nl.input("b", 4);
//! let (sum, cout) = nl.ripple_add(&a, &b, None);
//! nl.output("sum", &sum.concat(&cout.into()));
//!
//! // Functional simulation with activity capture.
//! let mut sim = Simulator::new(&nl);
//! sim.set(&a, 7);
//! sim.set(&b, 8);
//! sim.step();
//! assert_eq!(sim.peek_output("sum"), 15);
//!
//! // Synthesis-style reports.
//! let area = AreaReport::of(&nl);
//! assert!(area.total_um2 > 0.0);
//! let power = PowerReport::at_100mhz(&sim);
//! assert!(power.total_uw() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::must_use_candidate,
    clippy::module_name_repetitions,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::many_single_char_names,
    clippy::unreadable_literal,
    clippy::match_same_arms,
    clippy::needless_range_loop,
    clippy::missing_panics_doc,
    clippy::unusual_byte_groupings,
    clippy::too_many_lines,
    clippy::cast_lossless
)]

pub mod blocks;
pub mod cell;
pub mod netlist;
pub mod report;
pub mod sim;
pub mod timing;
pub mod verilog;

pub use cell::{CellKind, DEFAULT_CLOCK_HZ, VDD};
pub use netlist::{Bus, Gate, GateId, NetId, Netlist, Port, ScopeId, CONST0, CONST1};
pub use report::{AreaReport, PowerReport};
pub use sim::Simulator;
pub use timing::{PathHop, TimingReport};
pub use verilog::to_verilog;
