//! Levelized zero-delay logic simulation with per-net toggle counting.
//!
//! The simulator evaluates combinational gates once per applied vector in
//! topological order (zero-delay model: each net changes at most once per
//! vector, i.e. glitch-free switching activity). Toggle counts feed the
//! activity-based power model in [`crate::report`]. The same methodology is
//! applied to every design under comparison, mirroring the paper's use of
//! PrimeTime PX "with the average value obtained from actual DNN data".

use crate::cell::CellKind;
use crate::netlist::{Bus, Netlist, CONST1};

/// A gate-level simulator bound to a netlist.
#[derive(Debug)]
pub struct Simulator<'a> {
    nl: &'a Netlist,
    values: Vec<bool>,
    /// Gate indices in topological (evaluation) order; DFFs excluded.
    comb_order: Vec<usize>,
    /// Gate indices of the DFFs.
    dffs: Vec<usize>,
    /// Per-net toggle counts.
    toggles: Vec<u64>,
    /// Evaluated vectors (combinational cycles).
    cycles: u64,
    /// Captured clock edges (sequential cycles).
    clock_edges: u64,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator, levelizing the combinational logic.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop.
    #[must_use]
    pub fn new(nl: &'a Netlist) -> Self {
        let n_nets = nl.num_nets() as usize;
        // driver[net] = index of the combinational gate driving it.
        let mut driver: Vec<Option<usize>> = vec![None; n_nets];
        let mut dffs = Vec::new();
        for (gi, g) in nl.gates().iter().enumerate() {
            if g.kind.is_sequential() {
                dffs.push(gi);
                continue; // Q is a state root, not a combinational output
            }
            for &o in &g.outputs {
                assert!(
                    driver[o.0 as usize].is_none(),
                    "net {} driven by multiple gates",
                    o.0
                );
                driver[o.0 as usize] = Some(gi);
            }
        }
        // Kahn's algorithm over gate dependencies.
        let gates = nl.gates();
        let mut indeg: Vec<u32> = vec![0; gates.len()];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
        for (gi, g) in gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            for &i in &g.inputs {
                if let Some(src) = driver[i.0 as usize] {
                    indeg[gi] += 1;
                    fanout[src].push(gi);
                }
            }
        }
        let mut queue: Vec<usize> = (0..gates.len())
            .filter(|&gi| !gates[gi].kind.is_sequential() && indeg[gi] == 0)
            .collect();
        let mut comb_order = Vec::with_capacity(gates.len());
        while let Some(gi) = queue.pop() {
            comb_order.push(gi);
            for &f in &fanout[gi] {
                indeg[f] -= 1;
                if indeg[f] == 0 {
                    queue.push(f);
                }
            }
        }
        let n_comb = gates.iter().filter(|g| !g.kind.is_sequential()).count();
        assert_eq!(
            comb_order.len(),
            n_comb,
            "combinational loop detected in `{}`",
            nl.name()
        );
        let mut values = vec![false; n_nets];
        values[CONST1.0 as usize] = true;
        Self {
            nl,
            values,
            comb_order,
            dffs,
            toggles: vec![0; n_nets],
            cycles: 0,
            clock_edges: 0,
        }
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// Drives an input bus with an integer value (LSB first).
    pub fn set(&mut self, bus: &Bus, value: u64) {
        for (i, &n) in bus.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            if self.values[n.0 as usize] != bit {
                self.values[n.0 as usize] = bit;
                self.toggles[n.0 as usize] += 1;
            }
        }
    }

    /// Reads a bus as an integer (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the bus is wider than 64 bits.
    #[must_use]
    pub fn get(&self, bus: &Bus) -> u64 {
        assert!(bus.width() <= 64, "bus too wide for u64");
        let mut v = 0u64;
        for (i, &n) in bus.iter().enumerate() {
            if self.values[n.0 as usize] {
                v |= 1 << i;
            }
        }
        v
    }

    /// Reads a bus as a sign-extended integer.
    #[must_use]
    pub fn get_signed(&self, bus: &Bus) -> i64 {
        let raw = self.get(bus);
        let w = bus.width();
        if w == 64 || raw & (1 << (w - 1)) == 0 {
            raw as i64
        } else {
            (raw | (u64::MAX << w)) as i64
        }
    }

    /// Reads an output port by name.
    ///
    /// # Panics
    ///
    /// Panics if no output port has that name.
    #[must_use]
    pub fn peek_output(&self, name: &str) -> u64 {
        let p = self
            .nl
            .output_ports()
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no output port `{name}`"));
        self.get(&p.bus)
    }

    /// Evaluates the combinational logic for the current inputs and counts
    /// the vector as one activity cycle.
    pub fn step(&mut self) {
        self.settle();
        self.cycles += 1;
    }

    /// Evaluates the combinational logic without advancing the cycle count.
    pub fn settle(&mut self) {
        for idx in 0..self.comb_order.len() {
            let gi = self.comb_order[idx];
            self.eval_gate(gi);
        }
    }

    /// Applies a rising clock edge: settles the combinational logic with
    /// the current inputs (setup), captures every DFF's `D` into `Q`, then
    /// re-settles (propagation). Counts one sequential cycle.
    pub fn clock(&mut self) {
        self.settle();
        // Two-phase capture: sample all D first, then commit.
        let sampled: Vec<(usize, bool)> = self
            .dffs
            .iter()
            .map(|&gi| {
                let g = &self.nl.gates()[gi];
                (gi, self.values[g.inputs[0].0 as usize])
            })
            .collect();
        for (gi, d) in sampled {
            let q = self.nl.gates()[gi].outputs[0];
            if self.values[q.0 as usize] != d {
                self.values[q.0 as usize] = d;
                self.toggles[q.0 as usize] += 1;
            }
        }
        self.settle();
        self.clock_edges += 1;
        self.cycles += 1;
    }

    /// Resets all DFF outputs to zero and re-settles (asynchronous reset).
    pub fn reset(&mut self) {
        for idx in 0..self.dffs.len() {
            let q = self.nl.gates()[self.dffs[idx]].outputs[0];
            self.values[q.0 as usize] = false;
        }
        self.settle();
    }

    #[inline]
    fn eval_gate(&mut self, gi: usize) {
        let nl = self.nl;
        let g = &nl.gates()[gi];
        let a = self.values[g.inputs[0].0 as usize];
        let b = g.inputs.get(1).is_some_and(|n| self.values[n.0 as usize]);
        let c = g.inputs.get(2).is_some_and(|n| self.values[n.0 as usize]);
        let (o0, o1) = match g.kind {
            CellKind::Inv => (!a, None),
            CellKind::Buf => (a, None),
            CellKind::And2 => (a & b, None),
            CellKind::Or2 => (a | b, None),
            CellKind::Nand2 => (!(a & b), None),
            CellKind::Nor2 => (!(a | b), None),
            CellKind::Xor2 => (a ^ b, None),
            CellKind::Xnor2 => (!(a ^ b), None),
            // Mux2 pin order: [d0, d1, sel]
            CellKind::Mux2 => (if c { b } else { a }, None),
            CellKind::Ha => (a ^ b, Some(a & b)),
            CellKind::Fa => (a ^ b ^ c, Some((a && b) || (c && (a ^ b)))),
            CellKind::Dff => unreachable!("DFFs are not in the combinational order"),
        };
        self.write_net(g.outputs[0], o0);
        if let Some(v1) = o1 {
            self.write_net(g.outputs[1], v1);
        }
    }

    #[inline]
    fn write_net(&mut self, net: crate::netlist::NetId, v: bool) {
        let slot = &mut self.values[net.0 as usize];
        if *slot != v {
            *slot = v;
            self.toggles[net.0 as usize] += 1;
        }
    }

    /// Toggle count of a net.
    #[must_use]
    pub fn net_toggles(&self, net: crate::netlist::NetId) -> u64 {
        self.toggles[net.0 as usize]
    }

    /// Number of evaluated vectors (combinational activity cycles).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of captured clock edges.
    #[must_use]
    pub fn clock_edges(&self) -> u64 {
        self.clock_edges
    }

    /// Clears all toggle statistics (keeps current net values).
    pub fn clear_stats(&mut self) {
        self.toggles.fill(0);
        self.cycles = 0;
        self.clock_edges = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_compute_truth_tables() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let and = nl.and2(a.bit(0), b.bit(0));
        let or = nl.or2(a.bit(0), b.bit(0));
        let xor = nl.xor2(a.bit(0), b.bit(0));
        let nand = nl.nand2(a.bit(0), b.bit(0));
        let nor = nl.nor2(a.bit(0), b.bit(0));
        let xnor_o = nl.xnor2(a.bit(0), b.bit(0));
        let not = nl.not(a.bit(0));
        let out = Bus(vec![and, or, xor, nand, nor, xnor_o, not]);
        nl.output("o", &out);
        let mut sim = Simulator::new(&nl);
        for (av, bv) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            sim.set(&a, av);
            sim.set(&b, bv);
            sim.step();
            let o = sim.peek_output("o");
            assert_eq!(o & 1, av & bv, "and");
            assert_eq!((o >> 1) & 1, av | bv, "or");
            assert_eq!((o >> 2) & 1, av ^ bv, "xor");
            assert_eq!((o >> 3) & 1, 1 - (av & bv), "nand");
            assert_eq!((o >> 4) & 1, 1 - (av | bv), "nor");
            assert_eq!((o >> 5) & 1, 1 - (av ^ bv), "xnor");
            assert_eq!((o >> 6) & 1, 1 - av, "not");
        }
    }

    #[test]
    fn fa_ha_mux() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 3);
        let (s0, c0) = nl.ha(a.bit(0), a.bit(1));
        let (s1, c1) = nl.fa(a.bit(0), a.bit(1), a.bit(2));
        let m = nl.mux2(a.bit(2), a.bit(1), a.bit(0));
        nl.output("o", &Bus(vec![s0, c0, s1, c1, m]));
        let mut sim = Simulator::new(&nl);
        for v in 0..8u64 {
            let (x, y, z) = (v & 1, (v >> 1) & 1, (v >> 2) & 1);
            sim.set(&a, v);
            sim.step();
            let o = sim.peek_output("o");
            assert_eq!(o & 1, (x + y) & 1);
            assert_eq!((o >> 1) & 1, (x + y) >> 1);
            assert_eq!((o >> 2) & 1, (x + y + z) & 1);
            assert_eq!((o >> 3) & 1, (x + y + z) >> 1);
            assert_eq!((o >> 4) & 1, if z == 1 { y } else { x });
        }
    }

    #[test]
    fn out_of_order_construction_still_levelizes() {
        // Build gates in an order where a later-created gate feeds an
        // earlier-created one via pre-allocated nets — topological sort
        // must handle it. We wire: out = NOT(mid), mid = AND(a, b),
        // creating NOT before AND by pre-allocating `mid`... which the
        // builder API does not allow directly, so emulate with buffers:
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let x1 = nl.not(a.bit(0));
        let x2 = nl.not(x1);
        let x3 = nl.not(x2);
        nl.output("o", &Bus(vec![x3]));
        let mut sim = Simulator::new(&nl);
        sim.set(&a, 1);
        sim.step();
        assert_eq!(sim.peek_output("o"), 0);
    }

    #[test]
    fn dff_pipeline_shifts() {
        let mut nl = Netlist::new("t");
        let d = nl.input("d", 1);
        let q1 = nl.dff(d.bit(0));
        let q2 = nl.dff(q1);
        nl.output("q", &Bus(vec![q1, q2]));
        let mut sim = Simulator::new(&nl);
        sim.set(&d, 1);
        sim.clock();
        assert_eq!(sim.peek_output("q"), 0b01);
        sim.set(&d, 0);
        sim.clock();
        assert_eq!(sim.peek_output("q"), 0b10);
        sim.clock();
        assert_eq!(sim.peek_output("q"), 0b00);
        assert_eq!(sim.clock_edges(), 3);
    }

    #[test]
    fn toggle_counting_is_exact() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let inv = nl.not(a.bit(0));
        nl.output("o", &Bus(vec![inv]));
        let mut sim = Simulator::new(&nl);
        sim.step(); // a=0 → inv goes 0→1: one toggle
        assert_eq!(sim.net_toggles(inv), 1);
        sim.set(&a, 1);
        sim.step(); // inv 1→0
        assert_eq!(sim.net_toggles(inv), 2);
        sim.set(&a, 1); // no change
        sim.step();
        assert_eq!(sim.net_toggles(inv), 2);
        assert_eq!(sim.cycles(), 3);
        sim.clear_stats();
        assert_eq!(sim.net_toggles(inv), 0);
    }

    #[test]
    fn get_signed_sign_extends() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 4);
        nl.output("o", &a);
        let mut sim = Simulator::new(&nl);
        sim.set(&a, 0b1110);
        sim.step();
        assert_eq!(sim.get_signed(&a), -2);
        sim.set(&a, 0b0110);
        sim.step();
        assert_eq!(sim.get_signed(&a), 6);
    }
}
