//! Static timing analysis: per-cell propagation delays and critical-path
//! extraction over the levelized netlist.
//!
//! §4.1 of the paper notes the synthesis was run at a relaxed 100 MHz "to
//! exclude any considerations related to timing", *"despite our decoder
//! having a shorter critical path than the Posit one"* — this module makes
//! that claim measurable.

use crate::cell::CellKind;
use crate::netlist::{NetId, Netlist, CONST0, CONST1};

impl CellKind {
    /// Propagation delay input→output in picoseconds (45 nm-class X1
    /// drives, typical corner; FA/HA report the slower sum arc).
    #[must_use]
    pub fn delay_ps(self) -> f64 {
        match self {
            CellKind::Inv => 12.0,
            CellKind::Buf => 25.0,
            CellKind::Nand2 => 14.0,
            CellKind::Nor2 => 16.0,
            CellKind::And2 => 20.0,
            CellKind::Or2 => 22.0,
            CellKind::Xor2 | CellKind::Xnor2 => 30.0,
            CellKind::Mux2 => 32.0,
            CellKind::Ha => 35.0,
            CellKind::Fa => 45.0,
            CellKind::Dff => 60.0, // clk→Q
        }
    }

    /// Setup time for sequential cells (ps).
    #[must_use]
    pub fn setup_ps(self) -> f64 {
        if self.is_sequential() {
            30.0
        } else {
            0.0
        }
    }
}

/// One hop of a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathHop {
    /// Cell kind of the gate traversed.
    pub cell: String,
    /// Scope path of the gate.
    pub scope: String,
    /// Arrival time at this gate's output (ps).
    pub arrival_ps: f64,
}

/// Result of static timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Longest register-to-register / input-to-output delay (ps), setup
    /// included.
    pub critical_path_ps: f64,
    /// Maximum clock frequency implied by the critical path (MHz).
    pub fmax_mhz: f64,
    /// The gates along the critical path, source to sink.
    pub path: Vec<PathHop>,
    /// Number of logic levels on the critical path.
    pub levels: usize,
}

impl TimingReport {
    /// Runs STA on a netlist.
    ///
    /// Arrival time 0 at primary inputs; DFF outputs launch at clk→Q;
    /// endpoints are primary outputs and DFF D pins (+setup).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop.
    #[must_use]
    pub fn of(nl: &Netlist) -> Self {
        let n = nl.num_nets() as usize;
        let mut arrival = vec![0.0f64; n];
        let mut from_gate: Vec<Option<usize>> = vec![None; n];
        // Seed DFF Q launches.
        for g in nl.gates() {
            if g.kind.is_sequential() {
                for &q in &g.outputs {
                    arrival[q.0 as usize] = g.kind.delay_ps();
                }
            }
        }
        // Propagate in topological order (reuse the simulator's levelize
        // logic by rebuilding a driver map + Kahn here).
        let order = topo_order(nl);
        for gi in order {
            let g = &nl.gates()[gi];
            let in_arr = g
                .inputs
                .iter()
                .map(|&i| arrival[i.0 as usize])
                .fold(0.0f64, f64::max);
            let out_arr = in_arr + g.kind.delay_ps();
            for &o in &g.outputs {
                if out_arr > arrival[o.0 as usize] {
                    arrival[o.0 as usize] = out_arr;
                    from_gate[o.0 as usize] = Some(gi);
                }
            }
        }
        // Endpoints: primary outputs and DFF D pins.
        let mut worst: f64 = 0.0;
        let mut worst_net: Option<NetId> = None;
        let consider = |net: NetId, extra: f64, worst: &mut f64, wn: &mut Option<NetId>| {
            let t = arrival[net.0 as usize] + extra;
            if t > *worst {
                *worst = t;
                *wn = Some(net);
            }
        };
        for p in nl.output_ports() {
            for &net in &p.bus {
                consider(net, 0.0, &mut worst, &mut worst_net);
            }
        }
        for g in nl.gates() {
            if g.kind.is_sequential() {
                consider(g.inputs[0], g.kind.setup_ps(), &mut worst, &mut worst_net);
            }
        }
        // Trace the path back.
        let mut path = Vec::new();
        let mut cur = worst_net;
        while let Some(net) = cur {
            if net == CONST0 || net == CONST1 {
                break;
            }
            match from_gate[net.0 as usize] {
                Some(gi) => {
                    let g = &nl.gates()[gi];
                    path.push(PathHop {
                        cell: g.kind.to_string(),
                        scope: nl.scope_path(g.scope),
                        arrival_ps: arrival[net.0 as usize],
                    });
                    // Continue from the latest-arriving input.
                    cur = g
                        .inputs
                        .iter()
                        .max_by(|a, b| arrival[a.0 as usize].total_cmp(&arrival[b.0 as usize]))
                        .copied();
                }
                None => break, // primary input or DFF Q
            }
        }
        path.reverse();
        let levels = path.len();
        Self {
            critical_path_ps: worst,
            fmax_mhz: if worst > 0.0 {
                1e6 / worst
            } else {
                f64::INFINITY
            },
            path,
            levels,
        }
    }
}

/// Topological order of combinational gates (Kahn).
fn topo_order(nl: &Netlist) -> Vec<usize> {
    let n = nl.num_nets() as usize;
    let mut driver: Vec<Option<usize>> = vec![None; n];
    for (gi, g) in nl.gates().iter().enumerate() {
        if g.kind.is_sequential() {
            continue;
        }
        for &o in &g.outputs {
            driver[o.0 as usize] = Some(gi);
        }
    }
    let gates = nl.gates();
    let mut indeg = vec![0u32; gates.len()];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    for (gi, g) in gates.iter().enumerate() {
        if g.kind.is_sequential() {
            continue;
        }
        for &i in &g.inputs {
            if let Some(src) = driver[i.0 as usize] {
                indeg[gi] += 1;
                fanout[src].push(gi);
            }
        }
    }
    let mut queue: Vec<usize> = (0..gates.len())
        .filter(|&gi| !gates[gi].kind.is_sequential() && indeg[gi] == 0)
        .collect();
    let mut order = Vec::with_capacity(gates.len());
    while let Some(gi) = queue.pop() {
        order.push(gi);
        for &f in &fanout[gi] {
            indeg[f] -= 1;
            if indeg[f] == 0 {
                queue.push(f);
            }
        }
    }
    let n_comb = gates.iter().filter(|g| !g.kind.is_sequential()).count();
    assert_eq!(order.len(), n_comb, "combinational loop in `{}`", nl.name());
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Bus;

    #[test]
    fn inverter_chain_delay_is_additive() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let mut x = a.bit(0);
        for _ in 0..10 {
            x = nl.not(x);
        }
        nl.output("o", &Bus(vec![x]));
        let t = TimingReport::of(&nl);
        assert!((t.critical_path_ps - 120.0).abs() < 1e-9);
        assert_eq!(t.levels, 10);
        assert!(t.path.iter().all(|h| h.cell == "INV"));
    }

    #[test]
    fn ripple_adder_critical_path_scales_with_width() {
        let delay = |w: usize| {
            let mut nl = Netlist::new("t");
            let a = nl.input("a", w);
            let b = nl.input("b", w);
            let (s, c) = nl.ripple_add(&a, &b, None);
            nl.output("o", &s.concat(&c.into()));
            TimingReport::of(&nl).critical_path_ps
        };
        let d4 = delay(4);
        let d16 = delay(16);
        assert!(d16 > d4 * 2.5, "{d4} vs {d16}");
    }

    #[test]
    fn sequential_paths_include_clkq_and_setup() {
        let mut nl = Netlist::new("t");
        let d = nl.input("d", 1);
        let q = nl.dff(d.bit(0));
        let x = nl.not(q);
        let _q2 = nl.dff(x);
        let t = TimingReport::of(&nl);
        // clk→Q (60) + INV (12) + setup (30) = 102 ps.
        assert!(
            (t.critical_path_ps - 102.0).abs() < 1e-9,
            "{}",
            t.critical_path_ps
        );
        assert!(t.fmax_mhz > 9000.0);
    }

    #[test]
    fn path_trace_lands_in_scopes() {
        let mut nl = Netlist::new("top");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let s = nl.scoped("adder", |nl| nl.ripple_add(&a, &b, None).0);
        nl.output("s", &s);
        let t = TimingReport::of(&nl);
        assert!(!t.path.is_empty());
        assert!(t.path.iter().any(|h| h.scope.contains("adder")));
    }
}
