//! Synthesis-style area and activity-based power reports.
//!
//! Mirrors the paper's methodology: area from the cell library footprints
//! (Design Compiler analog), power from switching activity recorded while
//! simulating the netlist with *actual operand data* (PrimeTime PX analog),
//! reported at the paper's 100 MHz operating point.

use crate::cell::{CellKind, DEFAULT_CLOCK_HZ};
use crate::netlist::Netlist;
use crate::sim::Simulator;
use std::collections::BTreeMap;
use std::fmt;

/// Area summary of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Total cell area in µm².
    pub total_um2: f64,
    /// Area per full scope path.
    pub by_scope: BTreeMap<String, f64>,
    /// Cell-count histogram.
    pub by_cell: BTreeMap<String, usize>,
}

impl AreaReport {
    /// Computes the area report of `nl`.
    #[must_use]
    pub fn of(nl: &Netlist) -> Self {
        let mut total = 0.0;
        let mut by_scope: BTreeMap<String, f64> = BTreeMap::new();
        let mut by_cell: BTreeMap<String, usize> = BTreeMap::new();
        for g in nl.gates() {
            let a = g.kind.area_um2();
            total += a;
            *by_scope.entry(nl.scope_path(g.scope)).or_insert(0.0) += a;
            *by_cell.entry(g.kind.to_string()).or_insert(0) += 1;
        }
        Self {
            total_um2: total,
            by_scope,
            by_cell,
        }
    }

    /// Sums the area of every scope whose path starts with `prefix`.
    #[must_use]
    pub fn scope_area(&self, prefix: &str) -> f64 {
        self.by_scope
            .iter()
            .filter(|(p, _)| p.as_str() == prefix || p.starts_with(&format!("{prefix}/")))
            .map(|(_, a)| a)
            .sum()
    }

    /// Aggregates by scope-path depth (1 = direct children of the root).
    #[must_use]
    pub fn grouped(&self, depth: usize) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for (path, a) in &self.by_scope {
            let key: Vec<&str> = path.split('/').take(depth + 1).collect();
            *out.entry(key.join("/")).or_insert(0.0) += a;
        }
        out
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total area: {:.1} um^2", self.total_um2)?;
        for (path, a) in &self.by_scope {
            writeln!(f, "  {path}: {a:.1} um^2")?;
        }
        Ok(())
    }
}

/// Power summary of a simulated netlist at a given clock frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Switching (dynamic) power in µW.
    pub dynamic_uw: f64,
    /// Sequential clock-tree power in µW.
    pub clock_uw: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
    /// Total per full scope path (dynamic + leakage + clock), µW.
    pub by_scope: BTreeMap<String, f64>,
    /// Number of activity cycles the averages were taken over.
    pub cycles: u64,
}

impl PowerReport {
    /// Total power in µW.
    #[must_use]
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.clock_uw + self.leakage_uw
    }

    /// Extracts the power report from simulation activity at `freq_hz`.
    ///
    /// Dynamic power: `P = (Σ_gate toggles × E_switch) / cycles × f`.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has recorded no cycles.
    #[must_use]
    pub fn of(sim: &Simulator<'_>, freq_hz: f64) -> Self {
        let nl = sim.netlist();
        let cycles = sim.cycles();
        assert!(cycles > 0, "no activity recorded; run step()/clock() first");
        let mut dynamic_fj_total = 0.0;
        let mut clock_fj_total = 0.0;
        let mut by_scope: BTreeMap<String, f64> = BTreeMap::new();
        let leak_per_scope_nw = |k: CellKind| k.leakage_nw();
        let mut leakage_nw = 0.0;
        for g in nl.gates() {
            let toggles: u64 = g.outputs.iter().map(|&o| sim.net_toggles(o)).sum();
            let e_dyn = toggles as f64 * g.kind.switch_energy_fj();
            let e_clk = if g.kind.is_sequential() {
                sim.clock_edges() as f64 * g.kind.clock_energy_fj()
            } else {
                0.0
            };
            dynamic_fj_total += e_dyn;
            clock_fj_total += e_clk;
            let leak = leak_per_scope_nw(g.kind);
            leakage_nw += leak;
            // Per-scope: convert on the fly.
            let p_uw = (e_dyn + e_clk) / cycles as f64 * freq_hz * 1e-9 + leak * 1e-3;
            *by_scope.entry(nl.scope_path(g.scope)).or_insert(0.0) += p_uw;
        }
        // fJ/cycle × cycles/s = fW × 1e-9 = µW conversion: fJ × Hz = 1e-15 J/s
        // → W; × 1e6 → µW ⇒ factor 1e-9.
        let dynamic_uw = dynamic_fj_total / cycles as f64 * freq_hz * 1e-9;
        let clock_uw = clock_fj_total / cycles as f64 * freq_hz * 1e-9;
        Self {
            dynamic_uw,
            clock_uw,
            leakage_uw: leakage_nw * 1e-3,
            by_scope,
            cycles,
        }
    }

    /// Extracts the report at the paper's 100 MHz operating point.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has recorded no cycles.
    #[must_use]
    pub fn at_100mhz(sim: &Simulator<'_>) -> Self {
        Self::of(sim, DEFAULT_CLOCK_HZ)
    }

    /// Sums the power of every scope whose path starts with `prefix`.
    #[must_use]
    pub fn scope_power(&self, prefix: &str) -> f64 {
        self.by_scope
            .iter()
            .filter(|(p, _)| p.as_str() == prefix || p.starts_with(&format!("{prefix}/")))
            .map(|(_, w)| w)
            .sum()
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "power over {} cycles: dynamic {:.2} uW, clock {:.2} uW, leakage {:.2} uW, total {:.2} uW",
            self.cycles,
            self.dynamic_uw,
            self.clock_uw,
            self.leakage_uw,
            self.total_uw()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Bus;

    #[test]
    fn area_sums_cells_and_scopes() {
        let mut nl = Netlist::new("top");
        let a = nl.input("a", 2);
        nl.scoped("left", |nl| {
            nl.and2(a.bit(0), a.bit(1));
        });
        nl.scoped("right", |nl| {
            nl.xor2(a.bit(0), a.bit(1));
            nl.not(a.bit(0));
        });
        let r = AreaReport::of(&nl);
        let expect =
            CellKind::And2.area_um2() + CellKind::Xor2.area_um2() + CellKind::Inv.area_um2();
        assert!((r.total_um2 - expect).abs() < 1e-9);
        assert!((r.scope_area("top/left") - CellKind::And2.area_um2()).abs() < 1e-9);
        assert_eq!(r.by_cell["XOR2"], 1);
        assert_eq!(r.grouped(1).len(), 2);
    }

    #[test]
    fn power_scales_with_activity() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let x = nl.not(a.bit(0));
        nl.output("o", &Bus(vec![x]));
        // busy: toggles every cycle
        let mut busy = Simulator::new(&nl);
        for i in 0..100u64 {
            busy.set(&a, i & 1);
            busy.step();
        }
        // idle: constant input
        let mut idle = Simulator::new(&nl);
        for _ in 0..100 {
            idle.set(&a, 0);
            idle.step();
        }
        let pb = PowerReport::at_100mhz(&busy);
        let pi = PowerReport::at_100mhz(&idle);
        assert!(pb.dynamic_uw > pi.dynamic_uw * 10.0);
        assert_eq!(pb.leakage_uw, pi.leakage_uw);
    }

    #[test]
    fn dynamic_power_matches_hand_computation() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 1);
        let x = nl.not(a.bit(0));
        nl.output("o", &Bus(vec![x]));
        let mut sim = Simulator::new(&nl);
        // 4 cycles, output toggles each cycle (0→1→0→1→0... note first step
        // raises it from the initial 0).
        for i in 0..4u64 {
            sim.set(&a, i & 1);
            sim.step();
        }
        let p = PowerReport::of(&sim, 1.0e8);
        // 4 toggles × 0.65 fJ / 4 cycles × 1e8 Hz = 65 fW×1e6... = 0.065 µW
        let expect = 4.0 * 0.65 / 4.0 * 1.0e8 * 1e-9;
        assert!((p.dynamic_uw - expect).abs() < 1e-12, "{}", p.dynamic_uw);
    }

    #[test]
    fn clock_power_counted_for_dffs() {
        let mut nl = Netlist::new("t");
        let d = nl.input("d", 1);
        let q = nl.dff(d.bit(0));
        nl.output("q", &Bus(vec![q]));
        let mut sim = Simulator::new(&nl);
        for _ in 0..10 {
            sim.clock();
        }
        let p = PowerReport::at_100mhz(&sim);
        assert!(p.clock_uw > 0.0);
    }
}
