//! Netlist construction: nets, gates, buses and hierarchical scopes.

use crate::cell::CellKind;
use std::fmt;

/// Identifier of a single-bit net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateId(pub u32);

/// Identifier of a hierarchical scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScopeId(pub u32);

/// A multi-bit signal: a vector of nets, **least-significant bit first**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus(pub Vec<NetId>);

impl Bus {
    /// Bus width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// The `i`-th bit (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> NetId {
        self.0[i]
    }

    /// The most significant bit.
    ///
    /// # Panics
    ///
    /// Panics on an empty bus.
    #[must_use]
    pub fn msb(&self) -> NetId {
        *self.0.last().expect("empty bus")
    }

    /// A sub-range `[lo, hi)` of the bus (LSB-relative).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, lo: usize, hi: usize) -> Bus {
        Bus(self.0[lo..hi].to_vec())
    }

    /// Concatenates `self` (low part) with `high`.
    #[must_use]
    pub fn concat(&self, high: &Bus) -> Bus {
        let mut v = self.0.clone();
        v.extend_from_slice(&high.0);
        Bus(v)
    }

    /// Iterator over bits, LSB first.
    pub fn iter(&self) -> std::slice::Iter<'_, NetId> {
        self.0.iter()
    }
}

impl From<NetId> for Bus {
    fn from(n: NetId) -> Self {
        Bus(vec![n])
    }
}

impl<'a> IntoIterator for &'a Bus {
    type Item = &'a NetId;
    type IntoIter = std::slice::Iter<'a, NetId>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// One gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Cell kind.
    pub kind: CellKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output nets, in pin order (`[out]`, or `[sum, carry]` for HA/FA).
    pub outputs: Vec<NetId>,
    /// Scope this gate belongs to.
    pub scope: ScopeId,
}

/// A named port (input or output) of the netlist.
#[derive(Debug, Clone)]
pub struct Port {
    /// Port name (Verilog identifier).
    pub name: String,
    /// The bus carrying the port.
    pub bus: Bus,
}

#[derive(Debug, Clone)]
struct Scope {
    name: String,
    parent: Option<ScopeId>,
}

/// A flat gate-level netlist with hierarchical scope tags.
///
/// Nets `0` and `1` are the constant-zero and constant-one rails.
///
/// # Examples
///
/// ```
/// use mersit_netlist::{Netlist, Simulator};
///
/// let mut nl = Netlist::new("toy");
/// let a = nl.input("a", 4);
/// let b = nl.input("b", 4);
/// let (sum, cout) = nl.ripple_add(&a, &b, None);
/// nl.output("sum", &sum.concat(&cout.into()));
///
/// let mut sim = Simulator::new(&nl);
/// sim.set(&a, 9);
/// sim.set(&b, 11);
/// sim.step();
/// assert_eq!(sim.peek_output("sum"), 20);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    num_nets: u32,
    gates: Vec<Gate>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    scopes: Vec<Scope>,
    scope_stack: Vec<ScopeId>,
}

/// The constant-0 rail.
pub const CONST0: NetId = NetId(0);
/// The constant-1 rail.
pub const CONST1: NetId = NetId(1);

impl Netlist {
    /// Creates an empty netlist named `name`. The root scope is scope 0.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Self {
            scopes: vec![Scope {
                name: name.clone(),
                parent: None,
            }],
            name,
            num_nets: 2, // constants
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            scope_stack: vec![ScopeId(0)],
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nets (including the two constant rails).
    #[must_use]
    pub fn num_nets(&self) -> u32 {
        self.num_nets
    }

    /// All gates in creation order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Declared input ports.
    #[must_use]
    pub fn input_ports(&self) -> &[Port] {
        &self.inputs
    }

    /// Declared output ports.
    #[must_use]
    pub fn output_ports(&self) -> &[Port] {
        &self.outputs
    }

    /// Allocates a fresh net.
    pub fn net(&mut self) -> NetId {
        let id = NetId(self.num_nets);
        self.num_nets += 1;
        id
    }

    /// Allocates a fresh bus of `width` nets.
    pub fn bus(&mut self, width: usize) -> Bus {
        Bus((0..width).map(|_| self.net()).collect())
    }

    /// Declares an input port of `width` bits and returns its bus.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> Bus {
        let bus = self.bus(width);
        self.inputs.push(Port {
            name: name.into(),
            bus: bus.clone(),
        });
        bus
    }

    /// Declares `bus` as an output port.
    pub fn output(&mut self, name: impl Into<String>, bus: &Bus) {
        self.outputs.push(Port {
            name: name.into(),
            bus: bus.clone(),
        });
    }

    /// A `width`-bit bus of constant rails spelling `value` (LSB first).
    pub fn lit(&mut self, width: usize, value: u64) -> Bus {
        Bus((0..width)
            .map(|i| {
                if (value >> i) & 1 == 1 {
                    CONST1
                } else {
                    CONST0
                }
            })
            .collect())
    }

    /// Enters a named child scope; subsequent gates are tagged with it.
    pub fn enter_scope(&mut self, name: impl Into<String>) -> ScopeId {
        let parent = *self.scope_stack.last().expect("scope stack");
        let id = ScopeId(self.scopes.len() as u32);
        self.scopes.push(Scope {
            name: name.into(),
            parent: Some(parent),
        });
        self.scope_stack.push(id);
        id
    }

    /// Leaves the current scope.
    ///
    /// # Panics
    ///
    /// Panics when called at root scope.
    pub fn exit_scope(&mut self) {
        assert!(self.scope_stack.len() > 1, "cannot exit the root scope");
        self.scope_stack.pop();
    }

    /// Runs `f` inside a named scope.
    pub fn scoped<R>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Self) -> R) -> R {
        self.enter_scope(name);
        let r = f(self);
        self.exit_scope();
        r
    }

    /// Full path of a scope, `/`-separated from the root.
    #[must_use]
    pub fn scope_path(&self, id: ScopeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(s) = cur {
            let sc = &self.scopes[s.0 as usize];
            parts.push(sc.name.clone());
            cur = sc.parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Number of scopes (root included).
    #[must_use]
    pub fn num_scopes(&self) -> usize {
        self.scopes.len()
    }

    fn push_gate(&mut self, kind: CellKind, inputs: Vec<NetId>, n_out: usize) -> Vec<NetId> {
        debug_assert_eq!(inputs.len(), kind.num_inputs());
        debug_assert_eq!(n_out, kind.num_outputs());
        let outputs: Vec<NetId> = (0..n_out).map(|_| self.net()).collect();
        self.gates.push(Gate {
            kind,
            inputs,
            outputs: outputs.clone(),
            scope: *self.scope_stack.last().expect("scope stack"),
        });
        outputs
    }

    // ---- primitive gates -------------------------------------------------
    //
    // Every primitive folds constant-rail and trivially redundant inputs
    // before instantiating a cell, mirroring the constant propagation a
    // synthesis flow performs. This keeps gate counts honest when blocks
    // are built with partially constant operands (zero-padded buses,
    // constant shift-amount bits, …).

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        match a {
            CONST0 => CONST1,
            CONST1 => CONST0,
            _ => self.push_gate(CellKind::Inv, vec![a], 1)[0],
        }
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push_gate(CellKind::Buf, vec![a], 1)[0]
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST0, _) | (_, CONST0) => CONST0,
            (CONST1, x) | (x, CONST1) => x,
            _ if a == b => a,
            _ => self.push_gate(CellKind::And2, vec![a, b], 1)[0],
        }
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST1, _) | (_, CONST1) => CONST1,
            (CONST0, x) | (x, CONST0) => x,
            _ if a == b => a,
            _ => self.push_gate(CellKind::Or2, vec![a, b], 1)[0],
        }
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST0, _) | (_, CONST0) => CONST1,
            (CONST1, x) | (x, CONST1) => self.not(x),
            _ if a == b => self.not(a),
            _ => self.push_gate(CellKind::Nand2, vec![a, b], 1)[0],
        }
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST1, _) | (_, CONST1) => CONST0,
            (CONST0, x) | (x, CONST0) => self.not(x),
            _ if a == b => self.not(a),
            _ => self.push_gate(CellKind::Nor2, vec![a, b], 1)[0],
        }
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST0, x) | (x, CONST0) => x,
            (CONST1, x) | (x, CONST1) => self.not(x),
            _ if a == b => CONST0,
            _ => self.push_gate(CellKind::Xor2, vec![a, b], 1)[0],
        }
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (a, b) {
            (CONST1, x) | (x, CONST1) => x,
            (CONST0, x) | (x, CONST0) => self.not(x),
            _ if a == b => CONST1,
            _ => self.push_gate(CellKind::Xnor2, vec![a, b], 1)[0],
        }
    }

    /// 2:1 mux — returns `sel ? d1 : d0`.
    pub fn mux2(&mut self, sel: NetId, d1: NetId, d0: NetId) -> NetId {
        match (sel, d1, d0) {
            (CONST0, _, x) | (CONST1, x, _) => x,
            _ if d1 == d0 => d0,
            (_, CONST1, CONST0) => sel,
            (_, CONST0, CONST1) => self.not(sel),
            (_, CONST0, x) => {
                let ns = self.not(sel);
                self.and2(ns, x)
            }
            (_, CONST1, x) => self.or2(sel, x),
            (_, x, CONST0) => self.and2(sel, x),
            (_, x, CONST1) => {
                let ns = self.not(sel);
                self.or2(ns, x)
            }
            _ => self.push_gate(CellKind::Mux2, vec![d0, d1, sel], 1)[0],
        }
    }

    /// Half adder — returns `(sum, carry)`.
    pub fn ha(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        match (a, b) {
            (CONST0, x) | (x, CONST0) => (x, CONST0),
            (CONST1, x) | (x, CONST1) => (self.not(x), x),
            _ if a == b => (CONST0, a),
            _ => {
                let o = self.push_gate(CellKind::Ha, vec![a, b], 2);
                (o[0], o[1])
            }
        }
    }

    /// Full adder — returns `(sum, carry)`.
    pub fn fa(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        // Normalize constants into the carry position, then reduce.
        let (x, y, c) = if a == CONST0 || a == CONST1 {
            (b, cin, a)
        } else if b == CONST0 || b == CONST1 {
            (a, cin, b)
        } else {
            (a, b, cin)
        };
        match c {
            CONST0 => self.ha(x, y),
            CONST1 => {
                // sum = !(x ^ y), carry = x | y
                let s = self.xnor2(x, y);
                let co = self.or2(x, y);
                (s, co)
            }
            _ => {
                let o = self.push_gate(CellKind::Fa, vec![x, y, c], 2);
                (o[0], o[1])
            }
        }
    }

    /// Rising-edge D flip-flop — returns `q`.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.push_gate(CellKind::Dff, vec![d], 1)[0]
    }

    /// Allocates a DFF whose `D` input is connected later via
    /// [`Netlist::connect_dff`] — needed for feedback loops such as an
    /// accumulator register. Until connected, `D` reads constant zero.
    pub fn dff_uninit(&mut self) -> (GateId, NetId) {
        let out = self.push_gate(CellKind::Dff, vec![CONST0], 1)[0];
        (GateId(self.gates.len() as u32 - 1), out)
    }

    /// Connects the `D` input of a DFF created with [`Netlist::dff_uninit`].
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a DFF.
    pub fn connect_dff(&mut self, g: GateId, d: NetId) {
        let gate = &mut self.gates[g.0 as usize];
        assert_eq!(gate.kind, CellKind::Dff, "connect_dff target is not a DFF");
        gate.inputs[0] = d;
    }

    /// A register bus with deferred input: returns `(gate ids, q bus)`.
    pub fn dff_bus_uninit(&mut self, width: usize) -> (Vec<GateId>, Bus) {
        let mut ids = Vec::with_capacity(width);
        let mut q = Vec::with_capacity(width);
        for _ in 0..width {
            let (g, out) = self.dff_uninit();
            ids.push(g);
            q.push(out);
        }
        (ids, Bus(q))
    }

    /// Connects a deferred register bus to its next-state values.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn connect_dff_bus(&mut self, ids: &[GateId], d: &Bus) {
        assert_eq!(ids.len(), d.width(), "register width mismatch");
        for (&g, &bit) in ids.iter().zip(d.iter()) {
            self.connect_dff(g, bit);
        }
    }

    // ---- multi-input reductions -----------------------------------------

    /// AND-reduction tree over arbitrary fan-in.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    pub fn and_reduce(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, Self::and2)
    }

    /// OR-reduction tree over arbitrary fan-in.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    pub fn or_reduce(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, Self::or2)
    }

    /// XOR-reduction tree over arbitrary fan-in.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    pub fn xor_reduce(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, Self::xor2)
    }

    fn reduce(&mut self, nets: &[NetId], op: fn(&mut Self, NetId, NetId) -> NetId) -> NetId {
        assert!(!nets.is_empty(), "reduction over empty set");
        let mut layer: Vec<NetId> = nets.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(op(self, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    // ---- bus-level helpers ------------------------------------------------

    /// Bitwise NOT of a bus.
    pub fn not_bus(&mut self, a: &Bus) -> Bus {
        Bus(a.iter().map(|&n| self.not(n)).collect())
    }

    /// Bitwise binary op over two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn zip_bus(&mut self, a: &Bus, b: &Bus, op: fn(&mut Self, NetId, NetId) -> NetId) -> Bus {
        assert_eq!(a.width(), b.width(), "bus width mismatch");
        Bus(a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| op(self, x, y))
            .collect())
    }

    /// Bus-wide 2:1 mux: `sel ? d1 : d0` per bit.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux2_bus(&mut self, sel: NetId, d1: &Bus, d0: &Bus) -> Bus {
        assert_eq!(d1.width(), d0.width(), "bus width mismatch");
        Bus(d1
            .iter()
            .zip(d0.iter())
            .map(|(&x1, &x0)| self.mux2(sel, x1, x0))
            .collect())
    }

    /// Registers every bit of a bus through DFFs.
    pub fn dff_bus(&mut self, d: &Bus) -> Bus {
        Bus(d.iter().map(|&n| self.dff(n)).collect())
    }

    /// Zero-extends a bus to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()`.
    pub fn zext(&mut self, a: &Bus, width: usize) -> Bus {
        assert!(width >= a.width());
        let mut v = a.0.clone();
        v.resize(width, CONST0);
        Bus(v)
    }

    /// Sign-extends a bus to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width < a.width()` or the bus is empty.
    pub fn sext(&mut self, a: &Bus, width: usize) -> Bus {
        assert!(width >= a.width());
        let msb = a.msb();
        let mut v = a.0.clone();
        v.resize(width, msb);
        Bus(v)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: {} gates, {} nets, {} scopes",
            self.name,
            self.gates.len(),
            self.num_nets,
            self.scopes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_preallocated() {
        let nl = Netlist::new("t");
        assert_eq!(nl.num_nets(), 2);
    }

    #[test]
    fn bus_slicing_and_concat() {
        let mut nl = Netlist::new("t");
        let a = nl.bus(8);
        let lo = a.slice(0, 4);
        let hi = a.slice(4, 8);
        assert_eq!(lo.width(), 4);
        assert_eq!(lo.concat(&hi), a);
        assert_eq!(a.msb(), a.bit(7));
    }

    #[test]
    fn scopes_nest() {
        let mut nl = Netlist::new("top");
        let a = nl.net();
        let b = nl.net();
        nl.scoped("decoder", |nl| {
            nl.scoped("lzd", |nl| {
                nl.and2(a, b);
            });
        });
        let g = &nl.gates()[0];
        assert_eq!(nl.scope_path(g.scope), "top/decoder/lzd");
    }

    #[test]
    #[should_panic(expected = "cannot exit the root scope")]
    fn exit_root_scope_panics() {
        let mut nl = Netlist::new("t");
        nl.exit_scope();
    }

    #[test]
    fn reductions_build_trees() {
        let mut nl = Netlist::new("t");
        let a = nl.bus(7);
        let r = nl.and_reduce(&a.0);
        assert!(r.0 >= 2);
        // 7-input AND needs 6 two-input gates.
        assert_eq!(nl.gates().len(), 6);
    }

    #[test]
    fn lit_uses_rails() {
        let mut nl = Netlist::new("t");
        let b = nl.lit(4, 0b1010);
        assert_eq!(b.bit(0), CONST0);
        assert_eq!(b.bit(1), CONST1);
        assert_eq!(b.bit(2), CONST0);
        assert_eq!(b.bit(3), CONST1);
    }

    #[test]
    fn extension_helpers() {
        let mut nl = Netlist::new("t");
        let a = nl.bus(3);
        let z = nl.zext(&a, 5);
        assert_eq!(z.bit(4), CONST0);
        let s = nl.sext(&a, 5);
        assert_eq!(s.bit(4), a.bit(2));
    }
}
