//! Structural Verilog emission — the RTL deliverable of the paper's flow
//! ("RTL designs are fully implemented in Verilog").
//!
//! Every netlist can be dumped as a self-contained synthesizable Verilog
//! module over a small primitive cell set; the primitive definitions are
//! appended so the file elaborates stand-alone.

use crate::cell::CellKind;
use crate::netlist::{Netlist, CONST0, CONST1};
use std::fmt::Write as _;

/// Emits `nl` as a structural Verilog module plus the primitive cell models.
///
/// # Examples
///
/// ```
/// use mersit_netlist::{Netlist, to_verilog};
///
/// let mut nl = Netlist::new("adder4");
/// let a = nl.input("a", 4);
/// let b = nl.input("b", 4);
/// let (s, c) = nl.ripple_add(&a, &b, None);
/// nl.output("sum", &s.concat(&c.into()));
/// let v = to_verilog(&nl);
/// assert!(v.contains("module adder4"));
/// assert!(v.contains("FA"));
/// ```
#[must_use]
pub fn to_verilog(nl: &Netlist) -> String {
    let mut s = String::new();
    let net = |n: crate::netlist::NetId| -> String {
        if n == CONST0 {
            "1'b0".to_owned()
        } else if n == CONST1 {
            "1'b1".to_owned()
        } else {
            format!("n{}", n.0)
        }
    };
    let module_name = sanitize(nl.name());
    let has_dffs = nl.gates().iter().any(|g| g.kind.is_sequential());
    let mut ports = Vec::new();
    if has_dffs {
        ports.push("input clk".to_owned());
    }
    for p in nl.input_ports() {
        ports.push(format!(
            "input [{}:0] {}",
            p.bus.width() - 1,
            sanitize(&p.name)
        ));
    }
    for p in nl.output_ports() {
        ports.push(format!(
            "output [{}:0] {}",
            p.bus.width() - 1,
            sanitize(&p.name)
        ));
    }
    let _ = writeln!(s, "module {module_name} (");
    let _ = writeln!(s, "  {}", ports.join(",\n  "));
    let _ = writeln!(s, ");");
    // Wire declarations.
    for id in 2..nl.num_nets() {
        let _ = writeln!(s, "  wire n{id};");
    }
    // Port hookups.
    for p in nl.input_ports() {
        for (i, &n) in p.bus.iter().enumerate() {
            let _ = writeln!(s, "  assign {} = {}[{}];", net(n), sanitize(&p.name), i);
        }
    }
    for p in nl.output_ports() {
        for (i, &n) in p.bus.iter().enumerate() {
            let _ = writeln!(s, "  assign {}[{}] = {};", sanitize(&p.name), i, net(n));
        }
    }
    // Gate instances.
    for (gi, g) in nl.gates().iter().enumerate() {
        let cell = g.kind.to_string();
        let mut pins = Vec::new();
        for (k, &i) in g.inputs.iter().enumerate() {
            pins.push(format!(".{}({})", input_pin(g.kind, k), net(i)));
        }
        for (k, &o) in g.outputs.iter().enumerate() {
            pins.push(format!(".{}({})", output_pin(g.kind, k), net(o)));
        }
        if g.kind.is_sequential() {
            pins.push(".CK(clk)".to_owned());
        }
        let _ = writeln!(s, "  {cell} g{gi} ({});", pins.join(", "));
    }
    let _ = writeln!(s, "endmodule\n");
    s.push_str(PRIMITIVES);
    s
}

fn input_pin(kind: CellKind, idx: usize) -> &'static str {
    match kind {
        CellKind::Mux2 => ["D0", "D1", "S"][idx],
        CellKind::Fa => ["A", "B", "CI"][idx],
        CellKind::Dff => "D",
        _ => ["A", "B"][idx],
    }
}

fn output_pin(kind: CellKind, idx: usize) -> &'static str {
    match kind {
        CellKind::Ha | CellKind::Fa => ["S", "CO"][idx],
        CellKind::Dff => "Q",
        _ => "Y",
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

const PRIMITIVES: &str = r"
// --- primitive cell models (45nm-class library stand-ins) -----------------
module INV (input A, output Y); assign Y = ~A; endmodule
module BUF (input A, output Y); assign Y = A; endmodule
module NAND2 (input A, input B, output Y); assign Y = ~(A & B); endmodule
module NOR2 (input A, input B, output Y); assign Y = ~(A | B); endmodule
module AND2 (input A, input B, output Y); assign Y = A & B; endmodule
module OR2 (input A, input B, output Y); assign Y = A | B; endmodule
module XOR2 (input A, input B, output Y); assign Y = A ^ B; endmodule
module XNOR2 (input A, input B, output Y); assign Y = ~(A ^ B); endmodule
module MUX2 (input D0, input D1, input S, output Y); assign Y = S ? D1 : D0; endmodule
module HA (input A, input B, output S, output CO);
  assign S = A ^ B; assign CO = A & B;
endmodule
module FA (input A, input B, input CI, output S, output CO);
  assign S = A ^ B ^ CI; assign CO = (A & B) | (CI & (A ^ B));
endmodule
module DFF (input D, input CK, output reg Q);
  always @(posedge CK) Q <= D;
endmodule
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_ports_gates_and_primitives() {
        let mut nl = Netlist::new("dec 8");
        let a = nl.input("a", 8);
        let x = nl.and2(a.bit(0), a.bit(1));
        let y = nl.not(x);
        nl.output("y", &crate::netlist::Bus(vec![y]));
        let v = to_verilog(&nl);
        assert!(v.contains("module dec_8 ("));
        assert!(v.contains("input [7:0] a"));
        assert!(v.contains("output [0:0] y"));
        assert!(v.contains("AND2 g0"));
        assert!(v.contains("INV g1"));
        assert!(v.contains("module FA"));
    }

    #[test]
    fn constants_render_as_literals() {
        // Constant-input gates fold away, but constant rails can still
        // appear on ports (e.g. zero-extended outputs).
        let mut nl = Netlist::new("c");
        let a = nl.input("a", 1);
        let x = nl.not(a.bit(0));
        nl.output("y", &crate::netlist::Bus(vec![x, CONST0, CONST1]));
        let v = to_verilog(&nl);
        assert!(v.contains("1'b1"));
        assert!(v.contains("1'b0"));
    }

    #[test]
    fn constant_gates_fold_away() {
        let mut nl = Netlist::new("c");
        let a = nl.input("a", 1);
        let x = nl.and2(a.bit(0), CONST1); // folds to a
        assert_eq!(x, a.bit(0));
        let y = nl.or2(x, CONST0); // folds to x
        assert_eq!(y, x);
        assert!(nl.gates().is_empty());
    }
}
