//! Property-based verification of the arithmetic blocks against reference
//! software arithmetic, across random widths and operand values.

use mersit_netlist::{Netlist, Simulator};
use proptest::prelude::*;

fn mask(w: usize) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adder_matches_reference(w in 2usize..12, a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a & mask(w), b & mask(w));
        let mut nl = Netlist::new("t");
        let ab = nl.input("a", w);
        let bb = nl.input("b", w);
        let (s, c) = nl.ripple_add(&ab, &bb, None);
        nl.output("o", &s.concat(&c.into()));
        let mut sim = Simulator::new(&nl);
        sim.set(&ab, a);
        sim.set(&bb, b);
        sim.step();
        prop_assert_eq!(sim.peek_output("o"), a + b);
    }

    #[test]
    fn multiplier_matches_reference(
        wa in 1usize..8,
        wb in 1usize..8,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let (a, b) = (a & mask(wa), b & mask(wb));
        let mut nl = Netlist::new("t");
        let ab = nl.input("a", wa);
        let bb = nl.input("b", wb);
        let p = nl.array_mul(&ab, &bb);
        nl.output("p", &p);
        let mut sim = Simulator::new(&nl);
        sim.set(&ab, a);
        sim.set(&bb, b);
        sim.step();
        prop_assert_eq!(sim.peek_output("p"), a * b);
    }

    #[test]
    fn signed_add_matches_reference(w in 2usize..10, a in any::<i64>(), b in any::<i64>()) {
        let lo = -(1i64 << (w - 1));
        let hi = (1i64 << (w - 1)) - 1;
        let (a, b) = (a.rem_euclid(hi - lo + 1) + lo, b.rem_euclid(hi - lo + 1) + lo);
        let mut nl = Netlist::new("t");
        let ab = nl.input("a", w);
        let bb = nl.input("b", w);
        let s = nl.signed_add(&ab, &bb);
        nl.output("s", &s);
        let mut sim = Simulator::new(&nl);
        sim.set(&ab, (a as u64) & mask(w));
        sim.set(&bb, (b as u64) & mask(w));
        sim.step();
        prop_assert_eq!(sim.get_signed(&s), a + b);
    }

    #[test]
    fn shifters_match_reference(w in 2usize..16, a in any::<u64>(), sh in 0usize..20) {
        let a = a & mask(w);
        let shw = 5usize;
        let mut nl = Netlist::new("t");
        let ab = nl.input("a", w);
        let sb = nl.input("sh", shw);
        let l = nl.barrel_shl(&ab, &sb);
        let r = nl.barrel_shr(&ab, &sb);
        nl.output("l", &l);
        nl.output("r", &r);
        let mut sim = Simulator::new(&nl);
        let sh = sh.min((1 << shw) - 1);
        sim.set(&ab, a);
        sim.set(&sb, sh as u64);
        sim.step();
        let expect_l = if sh >= w { 0 } else { (a << sh) & mask(w) };
        let expect_r = if sh >= w { 0 } else { a >> sh };
        prop_assert_eq!(sim.peek_output("l"), expect_l);
        prop_assert_eq!(sim.peek_output("r"), expect_r);
    }

    #[test]
    fn lzc_matches_reference(w in 1usize..16, a in any::<u64>()) {
        let a = a & mask(w);
        let mut nl = Netlist::new("t");
        let ab = nl.input("a", w);
        let c = nl.leading_zero_count(&ab);
        nl.output("c", &c);
        let mut sim = Simulator::new(&nl);
        sim.set(&ab, a);
        sim.step();
        let expect = if a == 0 {
            w as u64
        } else {
            (w as u64) - 1 - (63 - u64::from(a.leading_zeros()))
        };
        prop_assert_eq!(sim.peek_output("c"), expect);
    }

    #[test]
    fn negate_matches_two_complement(w in 2usize..12, a in any::<u64>()) {
        let a = a & mask(w);
        let mut nl = Netlist::new("t");
        let ab = nl.input("a", w);
        let n = nl.negate(&ab);
        nl.output("n", &n);
        let mut sim = Simulator::new(&nl);
        sim.set(&ab, a);
        sim.step();
        prop_assert_eq!(sim.peek_output("n"), a.wrapping_neg() & mask(w));
    }

    /// Area is invariant under simulation, and toggles never exceed
    /// cycles per net (zero-delay single-change property).
    #[test]
    fn toggle_counts_bounded_by_cycles(vals in prop::collection::vec(any::<u64>(), 1..40)) {
        let mut nl = Netlist::new("t");
        let a = nl.input("a", 8);
        let b = nl.input("b", 8);
        let p = nl.array_mul(&a, &b);
        nl.output("p", &p);
        let mut sim = Simulator::new(&nl);
        for (i, &v) in vals.iter().enumerate() {
            sim.set(&a, v & 0xFF);
            sim.set(&b, (v >> 8) & 0xFF);
            sim.step();
            let _ = i;
        }
        let cycles = sim.cycles();
        for net in 0..nl.num_nets() {
            prop_assert!(
                sim.net_toggles(mersit_netlist::NetId(net)) <= cycles,
                "net {net} toggled more than once per cycle"
            );
        }
    }
}
