//! A minimal, dependency-free shim of the [criterion](https://crates.io/crates/criterion)
//! API surface used by this workspace's benches.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion cannot be fetched. This crate keeps the same bench source
//! compiling and produces wall-clock measurements with `std::time`:
//!
//! * under `cargo bench` (argv contains `--bench`) each benchmark is
//!   warmed up and then timed over a fixed measurement window, reporting
//!   ns/iter and, when a [`Throughput`] was declared, elements per second;
//! * under `cargo test` (no `--bench` flag) each benchmark body runs once,
//!   acting as a smoke test — mirroring real criterion's test mode.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared per-iteration workload, used to derive rate reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    full: bool,
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.full {
            std::hint::black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm up for ~100ms while estimating the per-iter cost.
        let warmup = Duration::from_millis(100);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < warmup {
            std::hint::black_box(f());
            iters += 1;
        }
        let est = start.elapsed().as_secs_f64() / iters as f64;
        // Measure for ~300ms in one timed run.
        let target = (0.3 / est.max(1e-9)).ceil().max(1.0) as u64;
        let t0 = Instant::now();
        for _ in 0..target {
            std::hint::black_box(f());
        }
        self.ns_per_iter = t0.elapsed().as_secs_f64() * 1e9 / target as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benches a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let tp = self.throughput;
        self.parent.run_one(&label, tp, &mut f);
        self
    }

    /// Benches a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        let tp = self.throughput;
        self.parent.run_one(&label, tp, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    full: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror real criterion: full measurement only under `cargo bench`
        // (which passes `--bench`); plain execution (e.g. `cargo test`)
        // runs each body once as a smoke test.
        Self {
            full: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benches a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().to_string();
        self.run_one(&label, None, &mut f);
        self
    }

    fn run_one(&mut self, label: &str, tp: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            full: self.full,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        if !self.full {
            println!("test {label} ... ok (bench smoke run)");
            return;
        }
        let per_iter = b.ns_per_iter;
        let rate = match tp {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / (per_iter * 1e-9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / (per_iter * 1e-9))
            }
            None => String::new(),
        };
        println!("{label:<48} {per_iter:>14.1} ns/iter{rate}");
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        if self.full {
            println!("(criterion shim: wall-clock timings, no statistical analysis)");
        }
    }
}

/// Bundles benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { full: false };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(8));
            g.bench_function(BenchmarkId::from_parameter("x"), |b| {
                b.iter(|| calls += 1);
            });
            g.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("enc", "FP8").to_string(), "enc/FP8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
