//! Integration tests pinning the exact numeric anchors the paper states,
//! across crate boundaries.

use mersit_repro::core::{
    mersit_table, parse_format, Format, MacParams, Mersit, Posit, PrecisionProfile,
};

/// Fig. 2 table: dynamic ranges and W values of the three hardware formats.
#[test]
fn fig2_dynamic_ranges_and_kulisch_widths() {
    let fp = parse_format("FP(8,4)").unwrap();
    let po = parse_format("Posit(8,1)").unwrap();
    let me = parse_format("MERSIT(8,2)").unwrap();
    // FP(8,4): 2^-9 .. 2^7, W = 33
    assert_eq!(fp.min_positive(), 2f64.powi(-9));
    assert_eq!(MacParams::of(fp.as_ref()).w, 33);
    // Posit(8,1): 2^-12 .. 2^10, W = 45
    assert_eq!(po.min_positive(), 2f64.powi(-12));
    assert_eq!(po.max_finite(), 2f64.powi(10));
    assert_eq!(MacParams::of(po.as_ref()).w, 45);
    // MERSIT(8,2): 2^-9 .. 2^8, W = 35
    assert_eq!(me.min_positive(), 2f64.powi(-9));
    assert_eq!(me.max_finite(), 2f64.powi(8));
    assert_eq!(MacParams::of(me.as_ref()).w, 35);
}

/// Fig. 2 table: P and M for all three formats (P=5; M = 4/5/5).
#[test]
fn fig2_p_and_m_parameters() {
    let p = |n: &str| MacParams::of(parse_format(n).unwrap().as_ref());
    assert_eq!((p("FP(8,4)").p, p("FP(8,4)").m), (5, 4));
    assert_eq!((p("Posit(8,1)").p, p("Posit(8,1)").m), (5, 5));
    assert_eq!((p("MERSIT(8,2)").p, p("MERSIT(8,2)").m), (5, 5));
}

/// Table 1: the effective exponent of MERSIT(8,2) spans −9..=8 with the
/// exact fraction-bit allocation 0/2/4/4/2/0 by regime.
#[test]
fn table1_row_structure() {
    let m = Mersit::new(8, 2).unwrap();
    let rows = mersit_table(&m);
    assert_eq!(rows.len(), 20);
    let effs: Vec<i32> = rows.iter().filter_map(|r| r.exp_eff).collect();
    assert_eq!(effs, (-9..=8).collect::<Vec<_>>());
    for r in &rows {
        if let (Some(k), Some(_)) = (r.k, r.exp) {
            let expect = match k {
                -3 | 2 => 0,
                -2 | 1 => 2,
                -1 | 0 => 4,
                _ => panic!("unexpected regime {k}"),
            };
            assert_eq!(r.frac_bits, expect, "k={k}");
        }
    }
}

/// §3.2: MERSIT(8,2)'s 4-bit precision band (6 binades) is wider than
/// Posit(8,1)'s (4 binades), while its total range is narrower.
#[test]
fn section32_precision_band_comparison() {
    let m = PrecisionProfile::of(&Mersit::new(8, 2).unwrap());
    let p = PrecisionProfile::of(&Posit::new(8, 1).unwrap());
    assert_eq!(m.band_width_at(4), 6);
    assert_eq!(p.band_width_at(4), 4);
    let m_span = m.exp_max() - m.exp_min();
    let p_span = p.exp_max() - p.exp_min();
    assert!(m_span < p_span);
}

/// §4.3: values *with fraction bits* in MERSIT(8,2) span 2^-6..2^5 — a
/// narrower band than Posit(8,1)/FP(8,4) — the paper's explanation for
/// MERSIT's lower switching power.
#[test]
fn section43_fraction_bearing_range() {
    let m = Mersit::new(8, 2).unwrap();
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for code in m.codes() {
        if let Some(d) = m.fields(code as u16) {
            if d.frac_bits > 0 && !d.sign {
                let v = m.decode(code as u16);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    // Smallest fraction-bearing value sits in binade −6, largest just
    // below 2^6 (binade 5): the 2^-6..~2^6 band of §4.3.
    assert_eq!(lo.log2().floor() as i32, -6);
    assert_eq!(hi.log2().floor() as i32, 5);
}

/// §1: the Posit decode cost motivates MERSIT — our gate-level Posit
/// multiplier carries a substantial area penalty over FP8, and the MERSIT
/// multiplier eliminates most of it.
#[test]
fn section1_posit_multiplier_penalty() {
    use mersit_repro::hw::{decoder_for, standalone_decoder};
    use mersit_repro::netlist::AreaReport;
    let area = |n: &str| {
        let (nl, _, _) = standalone_decoder(decoder_for(n).unwrap().as_ref());
        AreaReport::of(&nl).total_um2
    };
    let fp = area("FP(8,4)");
    let po = area("Posit(8,1)");
    let me = area("MERSIT(8,2)");
    assert!(po > 1.5 * me, "posit {po} vs mersit {me}");
    assert!(me <= fp, "mersit decoder {me} should not exceed FP {fp}");
}

/// §4.1: the MERSIT decoder has a shorter critical path than the Posit
/// decoder (measured by static timing over the same cell model).
#[test]
fn section41_mersit_decoder_critical_path_shorter_than_posit() {
    use mersit_repro::hw::{decoder_for, standalone_decoder};
    use mersit_repro::netlist::TimingReport;
    let cp = |n: &str| {
        let (nl, _, _) = standalone_decoder(decoder_for(n).unwrap().as_ref());
        TimingReport::of(&nl).critical_path_ps
    };
    let mersit = cp("MERSIT(8,2)");
    let posit = cp("Posit(8,1)");
    assert!(
        mersit < posit,
        "MERSIT decoder {mersit} ps should beat Posit {posit} ps"
    );
}
