//! Integration: structural Verilog emission for every synthesized design.

use mersit_repro::hw::{decoder_for, standalone_decoder, MacUnit};
use mersit_repro::netlist::to_verilog;

#[test]
fn every_decoder_emits_wellformed_verilog() {
    for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)", "MERSIT(8,3)"] {
        let dec = decoder_for(name).unwrap();
        let (nl, _, _) = standalone_decoder(dec.as_ref());
        let v = to_verilog(&nl);
        assert!(v.starts_with("module "), "{name}");
        assert!(v.contains("input [7:0] code"), "{name}");
        assert!(v.contains("output"), "{name}");
        assert!(v.contains("endmodule"), "{name}");
        // Primitive models appended exactly once each.
        assert_eq!(v.matches("module FA ").count(), 1, "{name}");
        // Balanced module/endmodule.
        assert_eq!(
            v.matches("module ").count(),
            v.matches("endmodule").count(),
            "{name}"
        );
    }
}

#[test]
fn mac_verilog_declares_clock_and_registers() {
    let dec = decoder_for("MERSIT(8,2)").unwrap();
    let mac = MacUnit::build(dec.as_ref());
    let v = to_verilog(&mac.netlist);
    assert!(v.contains("input clk"));
    assert!(v.contains("DFF "));
    assert!(v.contains(".CK(clk)"));
    // Every accumulator bit is registered.
    assert_eq!(v.matches("DFF g").count(), mac.acc_width);
}

#[test]
fn verilog_net_references_are_declared() {
    let dec = decoder_for("MERSIT(8,2)").unwrap();
    let (nl, _, _) = standalone_decoder(dec.as_ref());
    let v = to_verilog(&nl);
    // Each referenced internal net nN must have a `wire nN;` declaration.
    let mut missing = 0;
    for token in v.split(|c: char| !c.is_alphanumeric() && c != '_') {
        if let Some(rest) = token.strip_prefix('n') {
            if rest.chars().all(|c| c.is_ascii_digit()) && !rest.is_empty() {
                let decl = format!("wire {token};");
                if !v.contains(&decl) {
                    missing += 1;
                }
            }
        }
    }
    assert_eq!(missing, 0, "{missing} undeclared nets referenced");
}
