//! Integration: the full PTQ pipeline — train, calibrate, quantize,
//! evaluate — reproducing the qualitative format ordering of Table 2 on a
//! small scale.

use mersit_repro::core::parse_format;
use mersit_repro::nn::models::{mobilenet_v3_t, vgg_t};
use mersit_repro::nn::{synthetic_images, train_classifier, Optimizer, TrainConfig};
use mersit_repro::ptq::{calibrate, evaluate_model, rmse_report, Metric};
use mersit_repro::tensor::Rng;

fn quick_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        opt: Optimizer::adam(2e-3),
        ..TrainConfig::default()
    }
}

/// On a benign plain-conv model every 8-bit format holds accuracy
/// (the VGG row of Table 2).
#[test]
fn benign_model_every_format_holds() {
    let ds = synthetic_images(21, 700, 200, 10);
    let mut rng = Rng::new(77);
    let mut model = vgg_t(10, 10, &mut rng);
    train_classifier(&mut model.net, &ds.train, &quick_cfg(7));
    let formats = vec![
        parse_format("INT8").unwrap(),
        parse_format("FP(8,4)").unwrap(),
        parse_format("Posit(8,1)").unwrap(),
        parse_format("MERSIT(8,2)").unwrap(),
    ];
    let (row, _) = evaluate_model(&mut model, &ds, &formats, Metric::Accuracy, 50);
    assert!(row.fp32 > 65.0, "fp32 failed to train: {}", row.fp32);
    for s in &row.scores {
        assert!(
            s.score > row.fp32 - 8.0,
            "{} dropped too far: {} vs {}",
            s.format,
            s.score,
            row.fp32
        );
    }
}

/// On the h-swish + SE model the narrow-range formats lose clearly more
/// accuracy than MERSIT(8,2)/Posit(8,1) — the MobileNet_v3 row shape.
#[test]
fn range_hungry_model_separates_formats() {
    let ds = synthetic_images(23, 700, 250, 10);
    let mut rng = Rng::new(42);
    let mut model = mobilenet_v3_t(10, 10, &mut rng);
    train_classifier(&mut model.net, &ds.train, &quick_cfg(5));
    let formats = vec![
        parse_format("Posit(8,0)").unwrap(),
        parse_format("INT8").unwrap(),
        parse_format("Posit(8,1)").unwrap(),
        parse_format("MERSIT(8,2)").unwrap(),
    ];
    let (row, _) = evaluate_model(&mut model, &ds, &formats, Metric::Accuracy, 50);
    assert!(row.fp32 > 60.0, "fp32 failed to train: {}", row.fp32);
    let s = |n: &str| row.score_of(n).unwrap();
    let robust = s("MERSIT(8,2)").min(s("Posit(8,1)"));
    let narrow = s("Posit(8,0)").min(s("INT8"));
    assert!(
        robust >= narrow,
        "robust formats ({robust}) should beat narrow-range ones ({narrow})"
    );
    assert!(
        s("MERSIT(8,2)") > row.fp32 - 10.0,
        "MERSIT should stay near FP32: {} vs {}",
        s("MERSIT(8,2)"),
        row.fp32
    );
}

/// Fig. 6 shape: MERSIT(8,2) RMSE comparable to Posit(8,1), lower than
/// FP(8,4).
#[test]
fn rmse_ordering_matches_fig6() {
    let ds = synthetic_images(29, 400, 100, 8);
    let mut rng = Rng::new(5);
    let mut model = vgg_t(8, 10, &mut rng);
    train_classifier(&mut model.net, &ds.train, &quick_cfg(3));
    let cal = calibrate(&model, &ds.calib.inputs, 32);
    let sample = ds.test.inputs.slice_outer(0, 32);
    let mut rep = |n: &str| {
        let fmt = parse_format(n).unwrap();
        rmse_report(&mut model, &cal, fmt.as_ref(), &sample, 16)
    };
    let me = rep("MERSIT(8,2)");
    let po = rep("Posit(8,1)");
    let fp = rep("FP(8,4)");
    assert!(
        me.combined() < fp.combined(),
        "MERSIT {} should beat FP(8,4) {}",
        me.combined(),
        fp.combined()
    );
    assert!(
        me.combined() < po.combined() * 1.3,
        "MERSIT {} should be comparable to Posit {}",
        me.combined(),
        po.combined()
    );
}
