//! Integration: gate-level hardware vs bit-exact software golden models vs
//! plain f64 arithmetic, across the format / netlist / hw crates.

use mersit_repro::core::{parse_format, ValueClass};
use mersit_repro::hw::{decoder_for, standalone_decoder, GoldenMac, MacUnit};
use mersit_repro::netlist::Simulator;

const HW_FORMATS: [&str; 4] = ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)", "MERSIT(8,3)"];

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    *seed >> 33
}

/// Every decoder output reproduces the format's decoded magnitude exactly,
/// over the entire 8-bit code space.
#[test]
fn decoders_cover_full_code_space() {
    for name in HW_FORMATS {
        let fmt = parse_format(name).unwrap();
        let dec = decoder_for(name).unwrap();
        let (nl, code, out) = standalone_decoder(dec.as_ref());
        let m = i64::from(dec.params().m);
        let mut sim = Simulator::new(&nl);
        for c in 0..256u16 {
            sim.set(&code, u64::from(c));
            sim.step();
            match fmt.classify(c) {
                ValueClass::Finite => {
                    let sig = sim.get(&out.sig) as f64;
                    let exp = sim.get_signed(&out.exp_eff);
                    let mag = sig * 2f64.powi((exp - (m - 1)) as i32);
                    let expect = fmt.decode(c).abs();
                    assert!(
                        (mag - expect).abs() <= expect * 1e-12,
                        "{name} code {c:#x}: {mag} vs {expect}"
                    );
                }
                ValueClass::Zero => {
                    assert_eq!(sim.get(&out.sig), 0, "{name} code {c:#x}");
                    assert_eq!(sim.peek_output("is_zero"), 1);
                }
                _ => assert_eq!(sim.peek_output("is_special"), 1, "{name} {c:#x}"),
            }
        }
    }
}

/// Gate-level MAC == software golden MAC == exact f64 dot product, on
/// random operand streams with dot-product clears.
#[test]
fn mac_units_are_kulisch_exact() {
    for name in ["FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"] {
        let fmt = parse_format(name).unwrap();
        let dec = decoder_for(name).unwrap();
        let mac = MacUnit::build(dec.as_ref());
        let mut golden = GoldenMac::new(fmt.as_ref(), mac.acc_width);
        let mut sim = Simulator::new(&mac.netlist);
        sim.reset();
        let mut seed = 0x5EED ^ name.len() as u64;
        for dot in 0..4 {
            sim.set(&mac.clear, 1);
            sim.clock();
            golden.clear();
            sim.set(&mac.clear, 0);
            for i in 0..24 {
                let w = (lcg(&mut seed) & 0xFF) as u16;
                let a = (lcg(&mut seed) & 0xFF) as u16;
                sim.set(&mac.w_code, u64::from(w));
                sim.set(&mac.a_code, u64::from(a));
                sim.clock();
                golden.mac(w, a);
                assert_eq!(
                    sim.get_signed(&mac.acc),
                    golden.acc_raw(),
                    "{name} dot {dot} step {i}"
                );
            }
            let hw_value = mac.acc_value(sim.get_signed(&mac.acc));
            assert!(
                (hw_value - golden.value_f64()).abs() < 1e-9,
                "{name}: gate-level {hw_value} vs f64 {}",
                golden.value_f64()
            );
        }
    }
}

/// A quantized gate-level dot product approximates the FP32 dot product
/// within the format's quantization error.
#[test]
fn quantized_hardware_dot_product_tracks_fp32() {
    let fmt = parse_format("MERSIT(8,2)").unwrap();
    let dec = decoder_for("MERSIT(8,2)").unwrap();
    let mac = MacUnit::build(dec.as_ref());
    let mut sim = Simulator::new(&mac.netlist);
    sim.reset();
    sim.set(&mac.clear, 1);
    sim.clock();
    sim.set(&mac.clear, 0);
    let mut fp32 = 0.0f64;
    let mut seed = 99u64;
    for _ in 0..32 {
        let w = (lcg(&mut seed) as f64 / 2f64.powi(31)) * 2.0 - 1.0;
        let a = (lcg(&mut seed) as f64 / 2f64.powi(31)) * 2.0 - 1.0;
        sim.set(&mac.w_code, u64::from(fmt.encode(w)));
        sim.set(&mac.a_code, u64::from(fmt.encode(a)));
        sim.clock();
        fp32 += w * a;
    }
    let got = mac.acc_value(sim.get_signed(&mac.acc));
    // 32 products of unit-range values: quantization error stays small.
    assert!((got - fp32).abs() < 0.25, "quantized {got} vs fp32 {fp32}");
}

/// Closed datapath loop: gate-level MAC → gate-level requantizer → decode
/// equals the software PTQ round-trip of the accumulated value.
#[test]
fn mac_to_requantizer_round_trip() {
    use mersit_repro::core::{Format, Mersit};
    use mersit_repro::hw::{MersitDecoder, MersitRequantizer};
    let fmt = Mersit::new(8, 2).unwrap();
    let dec = MersitDecoder::new(fmt.clone());
    let mac = MacUnit::build_with_margin(&dec, 6);
    let rq = MersitRequantizer::build(24, -12);
    let mut mac_sim = Simulator::new(&mac.netlist);
    let mut rq_sim = Simulator::new(&rq.netlist);
    mac_sim.reset();
    let mut seed = 0x10_0Du64;
    for trial in 0..8 {
        mac_sim.set(&mac.clear, 1);
        mac_sim.clock();
        mac_sim.set(&mac.clear, 0);
        for _ in 0..16 {
            mac_sim.set(&mac.w_code, lcg(&mut seed) & 0xFF);
            mac_sim.set(&mac.a_code, lcg(&mut seed) & 0xFF);
            mac_sim.clock();
        }
        let acc = mac_sim.get_signed(&mac.acc);
        let value = mac.acc_value(acc);
        // Renormalize into the requantizer frame 2^-12 (drop sub-LSB bits
        // exactly as a hardware truncation stage would; choose values
        // representable in 24 bits to keep the comparison exact).
        let mag = (value.abs() * 2f64.powi(12)).round() as u64;
        if mag >= 1 << 24 {
            continue; // out of this requantizer's range; covered elsewhere
        }
        let x = mag as f64 * 2f64.powi(-12) * value.signum();
        rq_sim.set(&rq.mag, mag);
        rq_sim.set(&rq.sign, u64::from(value < 0.0));
        rq_sim.step();
        let hw_code = rq_sim.peek_output("code") as u16;
        assert_eq!(hw_code, fmt.encode(x), "trial {trial}: value {value}");
        // And the decoded result is the PTQ round-trip.
        assert_eq!(fmt.decode(hw_code), fmt.quantize(x), "trial {trial}");
    }
}
