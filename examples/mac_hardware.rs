//! Gate-level MAC walkthrough: build the MERSIT(8,2) MAC unit, run a dot
//! product through the synthesized netlist, cross-check against f64, and
//! report synthesis-style area/power — ending with a Verilog dump.
//!
//! Run with: `cargo run --release --example mac_hardware`

use mersit_core::{Format, Mersit};
use mersit_hw::{MacUnit, MersitDecoder};
use mersit_netlist::{to_verilog, AreaReport, PowerReport, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fmt = Mersit::new(8, 2)?;
    let mac = MacUnit::build(&MersitDecoder::new(fmt.clone()));
    println!(
        "built {}: {} gates, {}-bit Kulisch accumulator",
        mac.netlist.name(),
        mac.netlist.gates().len(),
        mac.acc_width
    );

    // A dot product of quantized operands.
    let weights = [0.5_f64, -1.25, 2.0, 0.375, -0.75];
    let acts = [1.5_f64, 0.5, -0.25, 2.5, 3.0];
    let mut sim = Simulator::new(&mac.netlist);
    sim.reset();
    sim.set(&mac.clear, 1);
    sim.clock();
    sim.set(&mac.clear, 0);
    let mut expect = 0.0;
    for (&w, &a) in weights.iter().zip(&acts) {
        let wq = fmt.encode(w);
        let aq = fmt.encode(a);
        sim.set(&mac.w_code, u64::from(wq));
        sim.set(&mac.a_code, u64::from(aq));
        sim.clock();
        expect += fmt.decode(wq) * fmt.decode(aq);
    }
    let got = mac.acc_value(sim.get_signed(&mac.acc));
    println!("gate-level dot product = {got}   (f64 reference = {expect})");
    assert!((got - expect).abs() < 1e-9, "Kulisch accumulation is exact");

    // Synthesis-style reports.
    let area = AreaReport::of(&mac.netlist);
    println!("\narea: {:.1} um^2 total", area.total_um2);
    for (scope, a) in area.grouped(1) {
        println!("  {scope:<28} {a:>8.1} um^2");
    }
    let power = PowerReport::at_100mhz(&sim);
    println!(
        "power @100MHz over {} cycles: {:.2} uW (dynamic {:.2}, clock {:.2}, leakage {:.2})",
        power.cycles,
        power.total_uw(),
        power.dynamic_uw,
        power.clock_uw,
        power.leakage_uw
    );

    // Verilog artifact.
    let v = to_verilog(&mac.netlist);
    let path = "target/mac_mersit82.v";
    std::fs::write(path, &v)?;
    println!(
        "\nstructural Verilog written to {path} ({} lines)",
        v.lines().count()
    );
    Ok(())
}
