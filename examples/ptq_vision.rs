//! PTQ walkthrough on a vision model: train a MobileNetV3-style network on
//! the synthetic image task, calibrate on a small subset, and compare
//! 8-bit formats — a single row of the paper's Table 2.
//!
//! Run with: `cargo run --release --example ptq_vision`

use mersit_core::parse_format;
use mersit_nn::models::mobilenet_v3_t;
use mersit_nn::{synthetic_images, train_classifier, Optimizer, TrainConfig};
use mersit_ptq::{evaluate_model, Metric};
use mersit_tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data + model.
    let ds = synthetic_images(7, 800, 250, 10);
    let mut rng = Rng::new(42);
    let mut model = mobilenet_v3_t(10, ds.num_classes, &mut rng);
    println!("training {} on {} ...", model.name, ds.name);

    // 2. Pre-train in FP32 (the paper starts from pre-trained models).
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 32,
        opt: Optimizer::adam(2e-3),
        ..TrainConfig::default()
    };
    let losses = train_classifier(&mut model.net, &ds.train, &cfg);
    println!(
        "  loss: {:.3} -> {:.3}",
        losses[0],
        losses[losses.len() - 1]
    );

    // 3. PTQ: calibrate once, evaluate each format.
    let formats = vec![
        parse_format("INT8")?,
        parse_format("FP(8,2)")?,
        parse_format("FP(8,4)")?,
        parse_format("Posit(8,0)")?,
        parse_format("Posit(8,1)")?,
        parse_format("MERSIT(8,2)")?,
    ];
    let (row, cal) = evaluate_model(&mut model, &ds, &formats, Metric::Accuracy, 50);
    println!(
        "\ncalibrated {} activation sites on {} samples",
        cal.num_sites(),
        ds.calib.len()
    );
    println!("\n{:<14} accuracy", "format");
    println!("{:<14} {:6.1}%  (baseline)", "FP32", row.fp32);
    for s in &row.scores {
        let drop = row.fp32 - s.score;
        println!("{:<14} {:6.1}%  (drop {drop:+.1})", s.format, s.score);
    }
    println!("\nExpected shape: MERSIT(8,2)/Posit(8,1) stay near FP32 while the");
    println!("narrow-range formats (INT8, FP(8,2), Posit(8,0)) lose accuracy on");
    println!("this h-swish + squeeze-excitation model.");
    Ok(())
}
