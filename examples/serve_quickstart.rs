//! Quickstart for the serving layer: start an in-process server over a
//! calibrated model, submit single-sample requests from several client
//! threads, and watch the dynamic batcher coalesce them.
//!
//! Run with: `cargo run --release --example serve_quickstart`
//! (see SERVING.md for the full guide and every knob).
//!
//! The same server is reachable over TCP: `mersit_serve::net::spawn`
//! (or the standalone `mersit-served` binary) puts a non-blocking
//! event loop in front of it speaking the PROTOCOL.md wire format —
//! identical answers, socket or in-process.

use mersit_nn::models::vgg_t;
use mersit_ptq::{calibrate, Executor};
use mersit_serve::{Request, ServeConfig, Server};
use mersit_tensor::{Rng, Tensor};

fn main() {
    // 1. A model plus its calibration (per-site activation maxima) —
    //    in a real deployment these come from training + a calibration
    //    split; here an untrained zoo model on random data suffices.
    let mut rng = Rng::new(42);
    let model = vgg_t(8, 10, &mut rng);
    let name = model.name.clone();
    let calib = Tensor::randn(&[16, 3, 8, 8], 1.0, &mut rng);
    let cal = calibrate(&model, &calib, 8);

    // 2. Configure and start the server. `from_env` honors the
    //    MERSIT_SERVE_* variables; setters override programmatically.
    let cfg = ServeConfig::from_env().max_batch(4).max_wait_us(2000);
    let server = Server::start(vec![(model, cal)], cfg);

    // 3. Fire 12 single-sample requests from 4 client threads. Each
    //    request picks its own format/executor; the batcher coalesces
    //    compatible ones into shared forwards.
    let samples: Vec<Tensor> = (0..12)
        .map(|_| Tensor::randn(&[3, 8, 8], 1.0, &mut rng))
        .collect();
    std::thread::scope(|s| {
        for (c, chunk) in samples.chunks(3).enumerate() {
            let (server, name) = (&server, &name);
            s.spawn(move || {
                for (i, sample) in chunk.iter().enumerate() {
                    let req = Request::new(name, sample.clone())
                        .format("MERSIT(8,2)")
                        .executor(Executor::BitTrue);
                    match server.infer(req) {
                        Ok(r) => println!(
                            "client {c} sample {i}: class {} (batch of {}, {}us queued, {}us total)",
                            r.prediction, r.batch_size, r.queue_us, r.total_us
                        ),
                        Err(e) => println!("client {c} sample {i}: {e}"),
                    }
                }
            });
        }
    });

    // 4. The same sample is bit-identical alone or batched — resubmit
    //    one with an idle queue and compare.
    let alone = server
        .infer(
            Request::new(&name, samples[0].clone())
                .format("MERSIT(8,2)")
                .executor(Executor::BitTrue),
        )
        .expect("serve");
    println!(
        "sample 0 alone: class {} (batch of {})",
        alone.prediction, alone.batch_size
    );

    let stats = server.stats();
    println!(
        "served {} requests in {} batches ({} plans cached, {} rejected)",
        stats.completed, stats.batches, stats.cached_plans, stats.rejected
    );
    // Dropping the server drains the queue and joins the batcher.
}
