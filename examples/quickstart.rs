//! Quickstart: encode, decode and quantize values with MERSIT and the
//! comparison formats, and inspect the MAC sizing parameters.
//!
//! Run with: `cargo run --example quickstart`

use mersit_core::{Format, Fp8, MacParams, Mersit, Posit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the three formats of the paper's hardware study.
    let mersit = Mersit::new(8, 2)?;
    let posit = Posit::new(8, 1)?;
    let fp8 = Fp8::new(4)?;

    // Encode a real number to 8 bits and decode it back.
    let x = 1.37_f64;
    for fmt in [&mersit as &dyn Format, &posit, &fp8] {
        let code = fmt.encode(x);
        let back = fmt.decode(code);
        println!(
            "{:<12} encode({x}) = {code:#010b} -> {back}   (error {:+.4})",
            fmt.name(),
            back - x
        );
    }

    // Field-level decoding (what the hardware decoder extracts).
    let code = mersit.encode(x);
    let d = mersit.fields(code).expect("finite value");
    println!(
        "\nMERSIT fields of {code:#010b}: regime k={}, exp={}, eff={}, sig={:#07b}",
        d.regime.expect("mersit has regimes"),
        d.exp_raw,
        d.exp_eff,
        d.sig
    );

    // Quantize a small vector through each format.
    let data = [0.02, -0.4, 1.9, 3.1, -0.007];
    println!("\nquantized vectors:");
    for fmt in [&mersit as &dyn Format, &posit, &fp8] {
        let q: Vec<f64> = data.iter().map(|&v| fmt.quantize(v)).collect();
        println!("  {:<12} {q:.4?}", fmt.name());
    }

    // The Fig. 2 MAC sizing parameters.
    println!("\nMAC parameters (Fig. 2):");
    for fmt in [&fp8 as &dyn Format, &posit, &mersit] {
        println!("  {:<12} {}", fmt.name(), MacParams::of(fmt));
    }
    Ok(())
}
