//! PTQ on a transformer: train the BERT-style encoder on the CoLA-analogue
//! acceptability task (Matthews correlation, like GLUE), then compare 8-bit
//! formats — one GLUE row of the paper's Table 2.
//!
//! Run with: `cargo run --release --example glue_ptq`

use mersit_core::parse_format;
use mersit_nn::models::bert_t;
use mersit_nn::{
    glue_like, train_classifier, GlueTask, Optimizer, TrainConfig, GLUE_SEQ_LEN, GLUE_VOCAB,
};
use mersit_ptq::{evaluate_model, Metric};
use mersit_tensor::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = glue_like(GlueTask::Cola, 11, 1200, 400);
    let mut rng = Rng::new(3);
    let mut model = bert_t(GLUE_VOCAB, GLUE_SEQ_LEN, 32, ds.num_classes, &mut rng);
    println!(
        "training {} on {} ({} train sequences, 5% calibration split)...",
        model.name,
        ds.name,
        ds.train.len()
    );
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 32,
        opt: Optimizer::adam(1e-3),
        ..TrainConfig::default()
    };
    let losses = train_classifier(&mut model.net, &ds.train, &cfg);
    println!(
        "  loss: {:.3} -> {:.3}",
        losses[0],
        losses[losses.len() - 1]
    );

    // Token ids are never quantized (InputKind::Tokens); activations are
    // quantized at every encoder-internal tap (LayerNorm outputs, attention
    // outputs, residual-stream sums, FFN layers).
    let formats = vec![
        parse_format("INT8")?,
        parse_format("FP(8,3)")?,
        parse_format("FP(8,5)")?,
        parse_format("Posit(8,1)")?,
        parse_format("MERSIT(8,2)")?,
        parse_format("MERSIT(8,3)")?,
    ];
    let (row, cal) = evaluate_model(&mut model, &ds, &formats, Metric::Matthews, 50);
    println!(
        "\ncalibrated {} activation sites; scoring with Matthews correlation x100:\n",
        cal.num_sites()
    );
    println!("{:<14} {:>8.2}", "FP32", row.fp32);
    for s in &row.scores {
        println!("{:<14} {:>8.2}", s.format, s.score);
    }
    Ok(())
}
