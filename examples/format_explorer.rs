//! Format explorer: print the decoding table, precision staircase and key
//! properties of any format from the command line.
//!
//! Run with: `cargo run --example format_explorer -- "MERSIT(8,2)"`
//! (defaults to MERSIT(8,2); also accepts `"Posit(8,1)"`, `"FP(8,4)"`,
//! `"INT8"`, or any other valid configuration).

use mersit_core::{
    code_dump, parse_format, render_mersit_table, MacParams, Mersit, PrecisionProfile, ValueClass,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MERSIT(8,2)".to_owned());
    let fmt = parse_format(&name)?;
    println!("=== {} ===\n", fmt.name());

    // Key properties.
    println!("bits            : {}", fmt.bits());
    println!("max finite      : {}", fmt.max_finite());
    println!("min positive    : {}", fmt.min_positive());
    println!("max frac bits   : {}", fmt.max_frac_bits());
    println!("underflow       : {:?}", fmt.underflow_policy());
    if fmt.name() != "INT8" {
        println!("MAC parameters  : {}", MacParams::of(fmt.as_ref()));
    }

    // Precision staircase.
    let p = PrecisionProfile::of(fmt.as_ref());
    println!(
        "\nprecision staircase (binades {}..{}; digit = fraction bits):",
        p.exp_min(),
        p.exp_max()
    );
    println!("  {}", p.ascii_row(p.exp_min(), p.exp_max()));

    // MERSIT gets its full Table-1-style decoding table.
    if let Ok(m) = name
        .to_uppercase()
        .strip_prefix("MERSIT(")
        .map_or(Err(()), |args| {
            let args = args.trim_end_matches(')');
            let mut it = args.split(',');
            let b: u32 = it.next().and_then(|s| s.trim().parse().ok()).ok_or(())?;
            let e: u32 = it.next().and_then(|s| s.trim().parse().ok()).ok_or(())?;
            Mersit::new(b, e).map_err(|_| ())
        })
    {
        println!("\n{}", render_mersit_table(&m));
    }

    // Code-space census.
    let dump = code_dump(fmt.as_ref());
    let count = |c: ValueClass| dump.iter().filter(|r| r.class == c).count();
    println!(
        "code space: {} finite, {} zero, {} inf, {} nan",
        count(ValueClass::Finite),
        count(ValueClass::Zero),
        count(ValueClass::Infinite),
        count(ValueClass::Nan)
    );

    // The positive lattice around 1.0.
    println!("\nrepresentable magnitudes around 1.0:");
    let mut vals: Vec<f64> = dump
        .iter()
        .filter(|r| r.class == ValueClass::Finite && r.value > 0.0)
        .map(|r| r.value)
        .collect();
    vals.sort_by(f64::total_cmp);
    let pos = vals.partition_point(|&v| v < 1.0);
    let lo = pos.saturating_sub(3);
    let hi = (pos + 3).min(vals.len());
    for v in &vals[lo..hi] {
        println!("  {v}");
    }
    Ok(())
}
