//! Workspace-root entry point for the quantization-engine throughput
//! sweep, so `cargo run --release --bin perf_ptq` works from the root.
//!
//! Usage: `perf_ptq [n_elements]` (default 2^21 ≈ 2.1M). Set
//! `MERSIT_OBS=1` to also emit `OBS_perf_ptq.json` with per-stage span
//! timings and counters.

fn main() {
    mersit_obs::init_from_env();
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 21);
    mersit_bench::perf::run_perf_ptq(n);
    match mersit_obs::report::write_global_report("perf_ptq") {
        Ok(Some(path)) => println!("wrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("obs report write failed: {e}"),
    }
}
