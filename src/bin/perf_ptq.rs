//! Workspace-root entry point for the quantization-engine throughput
//! sweep, so `cargo run --release --bin perf_ptq` works from the root.
//!
//! Usage: `perf_ptq [n_elements] [--quick]` (default 2^21 ≈ 2.1M
//! elements; `--quick` drops to 2^20 and the first four Table 2
//! formats — the CI smoke configuration). Set `MERSIT_OBS=1` to also
//! emit `OBS_perf_ptq.json` with per-stage span timings and counters.

fn main() {
    mersit_obs::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let n: usize = std::env::args()
        .skip(1)
        .find_map(|a| a.parse().ok())
        .unwrap_or(if quick { 1 << 20 } else { 1 << 21 });
    mersit_bench::perf::run_perf_ptq(n, quick);
    match mersit_obs::report::write_global_report("perf_ptq") {
        Ok(Some(path)) => println!("wrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("obs report write failed: {e}"),
    }
}
