//! Workspace-root entry point for the quantization-engine throughput
//! sweep, so `cargo run --release --bin perf_ptq` works from the root.
//!
//! Usage: `perf_ptq [n_elements] [--quick] [--repeat R]` (default 2^21
//! ≈ 2.1M elements; `--quick` drops to 2^20 and the first four Table 2
//! formats — the CI smoke configuration; `--repeat R` runs the whole
//! sweep R times in one process — exercising persistent-pool reuse, and
//! adding no new obs schema keys — and writes `BENCH_ptq.json` once with
//! the median of every rate and the min of every wall-clock across
//! repeats, so steal-scheduler jitter doesn't pollute the committed
//! baseline). Set `MERSIT_OBS=1` to also emit `OBS_perf_ptq.json` with
//! per-stage span timings and counters.

fn main() {
    mersit_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut repeat = 1usize;
    let mut n: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--repeat" => {
                i += 1;
                repeat = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .expect("--repeat takes a positive integer");
            }
            other => {
                if n.is_none() {
                    if let Ok(v) = other.parse() {
                        n = Some(v);
                    }
                }
            }
        }
        i += 1;
    }
    let n = n.unwrap_or(if quick { 1 << 20 } else { 1 << 21 });
    mersit_bench::perf::run_perf_ptq_repeat(n, quick, repeat.max(1));
    match mersit_obs::report::write_global_report("perf_ptq") {
        Ok(Some(path)) => println!("wrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("obs report write failed: {e}"),
    }
}
