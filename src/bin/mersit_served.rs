//! `mersit-served` — the standalone socket-serving daemon: the model zoo
//! behind the non-blocking TCP front door.
//!
//! Usage: `mersit-served [--quick]`. Builds the deterministic model zoo
//! (`vgg_t` + `mobilenet_v3_t`, seed `0x5E4E` — the same construction
//! the `serve_bench` client grid assumes), calibrates, starts an
//! in-process [`mersit_serve::Server`] with the `MERSIT_SERVE_*` batching
//! knobs, and listens on `MERSIT_SERVE_ADDR` (default `127.0.0.1:7878`;
//! port `0` picks an ephemeral port) speaking the length-prefixed binary
//! protocol of `PROTOCOL.md`.
//!
//! `--quick` builds the zoo at the CI input size (`hw = 8`, matching
//! `serve_bench --quick`); the default is `hw = 10` (matching the full
//! bench grid). Drive it with the socket load generator:
//!
//! ```sh
//! MERSIT_SERVE_ADDR=127.0.0.1:7979 cargo run --release --bin mersit-served -- --quick &
//! cargo run --release --bin serve_bench -- --quick --net 127.0.0.1:7979
//! ```
//!
//! The network knobs (`MERSIT_SERVE_MAX_CONNS`, `MERSIT_SERVE_READ_BUF`,
//! `MERSIT_SERVE_WRITE_BUF`) and the batching/executor knobs are all
//! read from the environment; see SERVING.md. The process serves until
//! killed (the CI `net-smoke` job backgrounds it and `kill`s it after
//! the load run).

use mersit_nn::models::{mobilenet_v3_t, vgg_t};
use mersit_ptq::calibrate;
use mersit_serve::{net, NetConfig, ServeConfig, Server};
use mersit_tensor::{Rng, Tensor};
use std::sync::Arc;

fn main() {
    mersit_obs::init_from_env();
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let hw = if quick { 8 } else { 10 };
    let mut rng = Rng::new(0x5E4E);
    let mut models = Vec::new();
    for model in [vgg_t(hw, 10, &mut rng), mobilenet_v3_t(hw, 10, &mut rng)] {
        let calib = Tensor::randn(&[16, 3, hw, hw], 1.0, &mut rng);
        let cal = calibrate(&model, &calib, 8);
        println!("loaded {} (input 3x{hw}x{hw})", model.name);
        models.push((model, cal));
    }
    let serve_cfg = ServeConfig::from_env();
    let net_cfg = NetConfig::from_env();
    let server = Arc::new(Server::start(models, serve_cfg));
    let handle = net::spawn(server, net_cfg).expect("bind MERSIT_SERVE_ADDR");
    // The readiness line scripts wait for — keep the format stable.
    println!("mersit-served listening on {}", handle.addr());
    let stats = handle.join();
    println!(
        "mersit-served exiting: {} connections, {} requests, {} responses, {} errors",
        stats.accepted, stats.requests, stats.responses, stats.errors
    );
}
