//! Workspace-root entry point for the serving load bench, so
//! `cargo run --release --bin serve_bench` works from the root.
//!
//! Usage: `serve_bench [--quick] [--net ADDR]`. Drives a `mersit-serve`
//! server over the model zoo in closed-loop (1/N concurrent clients) and
//! open-loop (paced arrivals) modes for every (format × executor) combo,
//! then runs the socket-mode load generator — pipelined wire-protocol
//! connections against a self-hosted event loop, or against an external
//! `mersit-served` at `--net ADDR` (the CI `net-smoke` configuration) —
//! and writes requests/sec and p50/p95/p99 latency per run to
//! `BENCH_serve.json` (in-process grid under `runs`, socket grid under
//! `net.runs`). `--quick` shrinks the grid to one model and three
//! combos — the CI smoke configuration. The server knobs come from the
//! environment (`MERSIT_SERVE_MAX_BATCH`, `MERSIT_SERVE_MAX_WAIT_US`,
//! `MERSIT_SERVE_QUEUE_DEPTH`, `MERSIT_EXECUTOR`, plus the
//! `MERSIT_SERVE_ADDR`/`MAX_CONNS`/`READ_BUF`/`WRITE_BUF` network knobs
//! in self-hosted socket mode); set `MERSIT_OBS=1` to also emit
//! `OBS_serve_bench.json` with queue-depth/batch-size histograms,
//! `serve.net.*` counters, and per-stage spans.

fn main() {
    mersit_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let net_addr = args
        .iter()
        .position(|a| a == "--net")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let report = mersit_bench::serve::run_serve_bench(quick, net_addr);
    mersit_bench::serve::write_serve_json(&report);
    match mersit_obs::report::write_global_report("serve_bench") {
        Ok(Some(path)) => println!("wrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("obs report write failed: {e}"),
    }
}
