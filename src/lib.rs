//! # mersit-repro — facade crate for the MERSIT reproduction workspace
//!
//! Re-exports the member crates under one roof for the examples and
//! integration tests:
//!
//! * [`mersit_core`] (as `core`) — bit-exact formats (MERSIT, Posit, FP8, INT8);
//! * [`mersit_netlist`] (as `netlist`) — gate-level EDA substrate;
//! * [`mersit_hw`] (as `hw`) — decoders, multipliers and Kulisch MACs;
//! * [`mersit_tensor`] / [`mersit_nn`] — tensor math, layers,
//!   training, the miniature model zoo and synthetic datasets;
//! * [`mersit_ptq`] — calibration, fake-quantization, accuracy and
//!   RMSE harnesses.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench/src/bin/`
//! for the per-table/figure regenerators.

pub use mersit_core as core;
pub use mersit_hw as hw;
pub use mersit_netlist as netlist;
pub use mersit_nn as nn;
pub use mersit_ptq as ptq;
pub use mersit_tensor as tensor;
