//! # mersit-repro — facade crate for the MERSIT reproduction workspace
//!
//! Re-exports the member crates under one roof for the examples and
//! integration tests:
//!
//! * [`mersit_core`] (as `core`) — bit-exact formats (MERSIT, Posit, FP8, INT8);
//! * [`mersit_netlist`] (as `netlist`) — gate-level EDA substrate;
//! * [`mersit_hw`] (as `hw`) — decoders, multipliers and Kulisch MACs;
//! * [`mersit_tensor`] / [`mersit_nn`] — tensor math, layers,
//!   training, the miniature model zoo and synthetic datasets;
//! * [`mersit_ptq`] — calibration, fake-quantization, accuracy and
//!   RMSE harnesses;
//! * [`mersit_obs`] (as `obs`) — the `MERSIT_OBS`-gated observability
//!   layer (spans, counters, histograms, JSON run reports);
//! * [`mersit_bench`] (as `bench`) — shared workload machinery behind
//!   the table/figure regenerator binaries.
//!
//! See `examples/` for runnable walkthroughs, `crates/bench/src/bin/`
//! for the per-table/figure regenerators, and `ARCHITECTURE.md` for the
//! workspace map and data-flow diagram.

pub use mersit_bench as bench;
pub use mersit_core as core;
pub use mersit_hw as hw;
pub use mersit_netlist as netlist;
pub use mersit_nn as nn;
pub use mersit_obs as obs;
pub use mersit_ptq as ptq;
pub use mersit_serve as serve;
pub use mersit_tensor as tensor;
